"""Synthetic TargetLink-scale application generator.

The industrial code the paper evaluates in Section 2.3 cannot be published
("due to intellectual property issues"), so this module generates programs
with the same published characteristics:

    "The source files of this application, with all include files resolved,
    have an average size of approximately 5000 lines of code, the analyzed
    functions have around 800 basic blocks and about 300 conditional
    branches."

and, for Figure 2, ``ip(b=1) = 857 * 2 = 1714`` -- i.e. 857 basic blocks.

:func:`generate_synthetic_application` produces a deterministic (seeded)
mini-C function built from the ingredients TargetLink emits -- nested
``if``/``else`` ladders, ``switch`` statements over mode variables, saturation
arithmetic, calls to runnable subsystem stubs -- and *calibrates itself*
against the real CFG builder: it keeps appending generated top-level sections
until the block and branch counts hit the requested targets (within a
tolerance).  Figures 2 and 3 are regenerated on this program.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..cfg.builder import build_cfg
from ..cfg.graph import ControlFlowGraph
from ..minic import AnalyzedProgram, parse_and_analyze

#: published size of the paper's industrial function
PAPER_BASIC_BLOCKS = 857
PAPER_CONDITIONAL_BRANCHES = 300
PAPER_SOURCE_LINES = 5000


@dataclass
class SyntheticApplication:
    """A generated industrial-scale application."""

    source: str
    analyzed: AnalyzedProgram
    cfg: ControlFlowGraph
    function_name: str
    seed: int

    @property
    def basic_blocks(self) -> int:
        return len(self.cfg.real_blocks())

    @property
    def conditional_branches(self) -> int:
        return self.cfg.summary()["conditional_branches"]

    @property
    def source_lines(self) -> int:
        return sum(1 for line in self.source.splitlines() if line.strip())


@dataclass
class _GeneratorState:
    rng: random.Random
    input_names: list[str] = field(default_factory=list)
    local_names: list[str] = field(default_factory=list)
    stub_names: list[str] = field(default_factory=list)
    next_stub: int = 0


class SyntheticCodeGenerator:
    """Seeded generator of TargetLink-flavoured control code.

    The generated function is *hierarchical*, like real TargetLink output: a
    top-level ``switch`` over an operating-mode input, a nested ``switch``
    over a sub-mode input inside every mode, and a list of leaf sections
    (if/else ladders, saturations, subsystem calls) inside every sub-mode.
    The hierarchy is what gives Figure 2 its shape: raising the path bound
    first collapses leaf sections, then whole sub-modes, then whole modes,
    and finally the entire function (ip = 2).
    """

    def __init__(
        self,
        seed: int = 2005,
        inputs: int = 24,
        locals_: int = 16,
        modes: int = 6,
        submodes: int = 4,
    ):
        self._seed = seed
        self._state = _GeneratorState(rng=random.Random(seed))
        for index in range(inputs):
            self._state.input_names.append(f"u{index}")
        for index in range(locals_):
            self._state.local_names.append(f"aux{index}")
        self._modes = modes
        self._submodes = submodes
        #: leaf sections per (mode, submode)
        self._leaves: dict[tuple[int, int], list[str]] = {
            (mode, submode): []
            for mode in range(modes)
            for submode in range(submodes)
        }

    # ------------------------------------------------------------------ #
    def generate(
        self,
        target_blocks: int = PAPER_BASIC_BLOCKS,
        target_branches: int = PAPER_CONDITIONAL_BRANCHES,
        tolerance: float = 0.05,
        function_name: str = "controller_step",
        max_leaves: int = 4000,
    ) -> SyntheticApplication:
        """Generate a function whose CFG matches the requested size.

        Leaf sections are appended (round-robin over the mode/sub-mode
        hierarchy) until the measured block count reaches ``target_blocks``
        within ``tolerance``; the branch count follows because the leaf
        templates mirror the paper's branch/block ratio.
        """
        del target_branches  # the leaf templates fix the branch/block ratio
        lower = int(target_blocks * (1.0 - tolerance))
        upper = int(target_blocks * (1.0 + tolerance))
        rng = self._state.rng
        keys = sorted(self._leaves)

        # seed every sub-mode with one leaf so the hierarchy is complete
        for key in keys:
            self._leaves[key].append(self._leaf_section())

        application = self._analyze(self._render(function_name), function_name)
        leaves = len(keys)
        batch = max(1, target_blocks // 80)
        while application.basic_blocks < lower and leaves < max_leaves:
            for _ in range(batch):
                key = keys[rng.randrange(len(keys))]
                self._leaves[key].append(self._leaf_section())
                leaves += 1
            application = self._analyze(self._render(function_name), function_name)
        while application.basic_blocks > upper and leaves > len(keys):
            # drop a leaf from the fullest sub-mode
            key = max(keys, key=lambda k: len(self._leaves[k]))
            if len(self._leaves[key]) > 1:
                self._leaves[key].pop()
                leaves -= 1
            else:
                break
            application = self._analyze(self._render(function_name), function_name)
        return application

    # ------------------------------------------------------------------ #
    def _analyze(self, source: str, function_name: str) -> SyntheticApplication:
        analyzed = parse_and_analyze(source, filename="synthetic_targetlink.c")
        cfg = build_cfg(analyzed.program.function(function_name))
        return SyntheticApplication(
            source=source,
            analyzed=analyzed,
            cfg=cfg,
            function_name=function_name,
            seed=self._seed,
        )

    def _render(self, function_name: str) -> str:
        state = self._state
        lines: list[str] = ["/* synthetic TargetLink-style application */"]
        for name in state.input_names:
            lines.append(f"#pragma input {name}")
        for name in state.input_names:
            # u0/u1 are the operating-mode selectors (the Simulink model would
            # declare them as small enumerations); every other input is a raw
            # 8-bit sensor value
            if name == "u0":
                lines.append(f"#pragma range {name} 0 {self._modes - 1}")
            elif name == "u1":
                lines.append(f"#pragma range {name} 0 {self._submodes - 1}")
            else:
                lines.append(f"#pragma range {name} 0 255")
        lines.append("")
        for name in state.input_names:
            lines.append(f"UInt8 {name};")
        for name in state.local_names:
            lines.append(f"Int16 {name} = 0;")
        lines.append("")
        for name in sorted(set(state.stub_names)):
            lines.append(f"void {name}(void);")
        lines.append("")
        lines.append(f"void {function_name}(void) {{")
        lines.append("    switch (u0) {")
        for mode in range(self._modes):
            lines.append(f"    case {mode}:")
            lines.append("        switch (u1) {")
            for submode in range(self._submodes):
                lines.append(f"        case {submode}:")
                for leaf in self._leaves[(mode, submode)]:
                    lines.extend("        " + line for line in leaf.splitlines())
                lines.append(f"            {self._fresh_stub()}();")
                lines.append("            break;")
            lines.append("        default:")
            lines.append(self._assignment().replace("        ", "            "))
            lines.append("            break;")
            lines.append("        }")
            lines.append("        break;")
        lines.append("    default:")
        lines.append(self._assignment().replace("        ", "        "))
        lines.append("        break;")
        lines.append("    }")
        lines.append("}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #
    # leaf-section templates
    # ------------------------------------------------------------------ #
    def _leaf_section(self) -> str:
        rng = self._state.rng
        choice = rng.random()
        if choice < 0.55:
            return self._if_ladder(depth=rng.randint(1, 3))
        if choice < 0.80:
            return self._switch_section(cases=rng.randint(3, 4))
        if choice < 0.95:
            return self._saturation_section()
        return self._subsystem_calls(count=rng.randint(1, 2))

    def _fresh_stub(self) -> str:
        name = f"subsystem_{self._state.next_stub}"
        self._state.next_stub += 1
        self._state.stub_names.append(name)
        return name

    def _input(self) -> str:
        return self._state.rng.choice(self._state.input_names)

    def _local(self) -> str:
        return self._state.rng.choice(self._state.local_names)

    def _condition(self) -> str:
        rng = self._state.rng
        variable = self._input() if rng.random() < 0.7 else self._local()
        operator = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        constant = rng.randint(0, 200)
        if rng.random() < 0.25:
            other = self._input()
            return f"({variable} {operator} {constant}) && ({other} != 0)"
        return f"{variable} {operator} {constant}"

    def _assignment(self) -> str:
        rng = self._state.rng
        target = self._local()
        source = self._input()
        constant = rng.randint(1, 50)
        operator = rng.choice(["+", "-", "*"])
        return f"        {target} = {source} {operator} {constant};"

    def _if_ladder(self, depth: int) -> str:
        lines = [f"    if ({self._condition()}) {{"]
        lines.append(self._assignment())
        if self._state.rng.random() < 0.5:
            lines.append(f"        {self._fresh_stub()}();")
        if depth > 1:
            inner = self._if_ladder(depth - 1)
            lines.extend("    " + line for line in inner.splitlines())
        lines.append("    } else {")
        lines.append(self._assignment())
        lines.append("    }")
        return "\n".join(lines)

    def _switch_section(self, cases: int) -> str:
        selector = self._input()
        lines = [f"    switch ({selector}) {{"]
        for value in range(cases):
            lines.append(f"    case {value}:")
            lines.append("    " + self._assignment())
            if self._state.rng.random() < 0.5:
                lines.append(f"        if ({self._condition()}) {{")
                lines.append("    " + self._assignment())
                lines.append("        }")
            lines.append("        break;")
        lines.append("    default:")
        lines.append("    " + self._assignment())
        lines.append("        break;")
        lines.append("    }")
        return "\n".join(lines)

    def _saturation_section(self) -> str:
        target = self._local()
        source = self._input()
        upper = self._state.rng.randint(100, 250)
        lower = self._state.rng.randint(0, 60)
        lines = [
            f"    {target} = {source} + {self._state.rng.randint(1, 30)};",
            f"    if ({target} > {upper}) {{",
            f"        {target} = {upper};",
            "    } else {",
            f"        if ({target} < {lower}) {{",
            f"            {target} = {lower};",
            "        }",
            "    }",
        ]
        return "\n".join(lines)

    def _subsystem_calls(self, count: int) -> str:
        lines = []
        for _ in range(count):
            lines.append(f"    {self._fresh_stub()}();")
            lines.append(self._assignment().replace("        ", "    "))
        return "\n".join(lines)


def generate_synthetic_application(
    seed: int = 2005,
    target_blocks: int = PAPER_BASIC_BLOCKS,
    target_branches: int = PAPER_CONDITIONAL_BRANCHES,
    tolerance: float = 0.05,
) -> SyntheticApplication:
    """Generate the industrial-size application used for Figures 2 and 3."""
    generator = SyntheticCodeGenerator(seed=seed)
    return generator.generate(
        target_blocks=target_blocks,
        target_branches=target_branches,
        tolerance=tolerance,
    )


def generate_small_application(seed: int = 7, target_blocks: int = 120) -> SyntheticApplication:
    """A smaller synthetic program for tests (same structure, faster to build)."""
    generator = SyntheticCodeGenerator(seed=seed, inputs=10, locals_=6, modes=3, submodes=2)
    return generator.generate(
        target_blocks=target_blocks, target_branches=target_blocks // 3, tolerance=0.15
    )
