"""Persistent per-``(slice fingerprint, goal)`` verdict store.

The PR 4 query memo dies with its process: every ``project`` run and every
service job re-solves reachability queries whose sliced transition systems
have not changed.  This module persists verdicts *and witnesses* through
the crash-safe :class:`~repro.project.cache.ResultCache` (query namespace,
see :meth:`ResultCache.get_query`) keyed by the *content* fingerprint of
the sliced system (:func:`repro.mc.slicing.system_fingerprint`) and a
content fingerprint of the goal -- both independent of function names and
source locations, so hits survive edits outside the cone and transfer
across structurally identical functions.

Trust model: **nothing loaded from disk is believed without evidence.**

* REACHABLE entries carry the witness (initial state + trace step
  signatures); on load the witness is *replayed* against the current
  sliced system with the explicit engine's concrete semantics
  (simultaneous updates, domain clamping, guard via
  :func:`~repro.solver.expression.concrete_eval`).  The verdict served is
  the replay's outcome, so a poisoned or stale entry can fail (a counted,
  flight-recorded miss) but can never change a verdict.
* UNREACHABLE entries are proofs over the sliced system; they carry a
  checksum over the canonical entry JSON and the fingerprints they claim
  to answer, so bit-rot and cross-key splicing are detected structurally.
* Before *writing*, the witness is replayed once as a self-check --
  everything in the store replays by construction, which is what makes a
  load-time replay failure hard evidence of tampering or corruption.

The store is handed to query engines ambiently (a ``contextvars`` context
manager, like :func:`repro.perf.using_registry`) so pool workers, service
jobs and the CLI all share one wiring idiom.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any

from .. import perf
from ..solver.expression import EvaluationError, concrete_eval
from .property import ReachabilityGoal
from .result import Counterexample, Verdict

#: format tag of one store entry (inside the cache's own schema envelope)
STORE_FORMAT = "repro-query-store/1"

#: verdicts worth persisting -- proofs and replayable witnesses only;
#: UNKNOWN / BUDGET_EXHAUSTED / ENGINE_FAULT are properties of one run's
#: budget or fault plan, not of the sliced system
_PERSISTENT_VERDICTS = (Verdict.REACHABLE, Verdict.UNREACHABLE)


def goal_fingerprint(goal: ReachabilityGoal) -> str:
    """Content hash of a goal's semantics (its ``description`` is ignored)."""
    digest = hashlib.sha256()
    digest.update(
        repr(
            (
                tuple(sorted(goal.target_locations)),
                tuple(sorted(goal.target_labels)),
                tuple(goal.ordered_labels),
            )
        ).encode("utf-8")
    )
    return digest.hexdigest()[:16]


def _entry_checksum(core: dict[str, Any]) -> str:
    canonical = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------- #
# witness (de)serialisation and replay
# ---------------------------------------------------------------------- #
def serialize_witness(system, witness: Counterexample) -> dict[str, Any] | None:
    """Serialise *witness* relative to *system* as plain JSON data.

    The initial state must cover every variable of the (sliced) *system* --
    those drive the replay -- and additionally keeps any other integer
    values the witness carried (off-cone variables of the producing
    function): loaders re-use them when their own full model knows the
    name, so a same-function warm hit reconstructs the cold result
    bit-for-bit, and sanitise or re-complete them otherwise.  Trace steps
    are ``(source, target, labels)`` signatures resolved against the
    *current* system on replay -- the stored step never carries semantics
    of its own.
    """
    initial_state: dict[str, int] = {}
    for name in sorted(system.variables):
        value = witness.initial_state.get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            return None
        initial_state[name] = value
    for name in sorted(witness.initial_state):
        value = witness.initial_state[name]
        if name not in initial_state and isinstance(value, int) \
                and not isinstance(value, bool):
            initial_state[name] = value
    trace = [
        {
            "source": transition.source,
            "target": transition.target,
            "labels": list(transition.labels),
        }
        for transition in witness.trace
    ]
    return {"initial_state": initial_state, "trace": trace}


def replay_witness(
    system, goal: ReachabilityGoal, payload: Any
) -> Counterexample | None:
    """Re-execute a stored witness on *system*; ``None`` on any mismatch.

    Mirrors the explicit engine's concrete semantics exactly: guards are
    true iff :func:`concrete_eval` is non-zero, updates are computed
    simultaneously from the pre-state and clamped into their domains.  A
    successful replay is a genuine execution of the *current* system, so
    the REACHABLE verdict it supports is sound regardless of what the
    entry claimed.
    """
    if not isinstance(payload, dict):
        return None
    initial_state = payload.get("initial_state")
    trace_steps = payload.get("trace")
    if not isinstance(initial_state, dict) or not isinstance(trace_steps, list):
        return None
    # the replay needs (and validates) exactly the system's variables; any
    # extra stored values are the producer's off-cone state -- irrelevant
    # here, sanitised by the consumer before serving
    for name, variable in system.variables.items():
        value = initial_state.get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            return None
        if not (variable.domain.lo <= value <= variable.domain.hi):
            return None
        if variable.initial is not None and value != variable.initial:
            return None

    by_signature: dict[tuple[int, int, tuple[str, ...]], list] = {}
    for transition in system.transitions:
        signature = (transition.source, transition.target, tuple(transition.labels))
        by_signature.setdefault(signature, []).append(transition)

    location = system.initial_location
    if not trace_steps:
        if not goal.is_trivially_reached_at(location):
            return None
        return _replayed_counterexample(system, initial_state, [])

    assignment = {name: initial_state[name] for name in system.variables}
    progress = 0
    trace = []
    for step in trace_steps:
        if not isinstance(step, dict):
            return None
        source = step.get("source")
        target = step.get("target")
        labels = step.get("labels")
        if (
            not isinstance(source, int)
            or not isinstance(target, int)
            or not isinstance(labels, list)
            or not all(isinstance(label, str) for label in labels)
        ):
            return None
        if source != location:
            return None
        candidates = by_signature.get((source, target, tuple(labels)), ())
        taken = None
        for transition in candidates:
            if transition.guard is not None:
                try:
                    if concrete_eval(transition.guard, assignment) == 0:
                        continue
                except EvaluationError:
                    continue
            taken = transition
            break
        if taken is None:
            return None
        new_assignment = dict(assignment)
        try:
            for name, expr in taken.updates:
                value = concrete_eval(expr, assignment)
                domain = system.variables[name].domain
                new_assignment[name] = min(max(value, domain.lo), domain.hi)
        except EvaluationError:
            return None
        assignment = new_assignment
        location = taken.target
        progress = goal.progress_after(taken, progress)
        trace.append(taken)
    if not goal.satisfied(location, trace[-1], progress):
        return None
    return _replayed_counterexample(system, initial_state, trace)


def _replayed_counterexample(system, initial_state, trace) -> Counterexample:
    inputs = {
        name: initial_state[name]
        for name, variable in system.variables.items()
        if variable.is_input
    }
    return Counterexample(
        inputs=inputs, initial_state=dict(initial_state), trace=list(trace)
    )


# ---------------------------------------------------------------------- #
# entry packing / structural validation
# ---------------------------------------------------------------------- #
def pack_entry(
    slice_fingerprint: str,
    goal_fp: str,
    verdict: Verdict,
    witness: dict[str, Any] | None,
) -> dict[str, Any]:
    core = {
        "format": STORE_FORMAT,
        "slice_fingerprint": slice_fingerprint,
        "goal_fingerprint": goal_fp,
        "verdict": verdict.value,
        "witness": witness,
    }
    return {**core, "checksum": _entry_checksum(core)}


def structural_error(
    entry: Any,
    slice_fingerprint: str | None = None,
    goal_fp: str | None = None,
) -> str | None:
    """Offline validity check of one store entry (no system needed).

    Used both on the load path (before replay) and by the ``cache-verify``
    sweep; returns a human-readable reason or ``None`` when the entry is
    structurally sound.
    """
    if not isinstance(entry, dict):
        return "entry is not an object"
    if entry.get("format") != STORE_FORMAT:
        return f"unknown store format {entry.get('format')!r}"
    core = {key: value for key, value in entry.items() if key != "checksum"}
    if entry.get("checksum") != _entry_checksum(core):
        return "checksum mismatch"
    if slice_fingerprint is not None and entry.get("slice_fingerprint") != slice_fingerprint:
        return "slice fingerprint mismatch"
    if goal_fp is not None and entry.get("goal_fingerprint") != goal_fp:
        return "goal fingerprint mismatch"
    verdict = entry.get("verdict")
    if verdict == Verdict.UNREACHABLE.value:
        if entry.get("witness") is not None:
            return "unreachable entry carries a witness"
        return None
    if verdict != Verdict.REACHABLE.value:
        return f"non-persistable verdict {verdict!r}"
    witness = entry.get("witness")
    if not isinstance(witness, dict):
        return "reachable entry without witness"
    trace = witness.get("trace")
    if not isinstance(witness.get("initial_state"), dict) or not isinstance(trace, list):
        return "malformed witness"
    location = None
    for step in trace:
        if not isinstance(step, dict):
            return "malformed trace step"
        if location is not None and step.get("source") != location:
            return "trace steps do not chain"
        location = step.get("target")
    return None


# ---------------------------------------------------------------------- #
# the store
# ---------------------------------------------------------------------- #
@dataclass
class QueryStoreStats:
    """Counters of one store handle (mirrored into ``repro.perf``)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    replay_failures: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class QueryStore:
    """Persistent verdict/witness store over a result cache's query namespace.

    ``cache`` is duck-typed (anything exposing ``query_key_for`` /
    ``get_query`` / ``put_query`` / ``quarantine_query``); in practice it is
    the scheduler's :class:`~repro.project.cache.ResultCache`, so query
    entries inherit its crash-safety, fault-injection sites and
    quarantine machinery.
    """

    def __init__(self, cache):
        self._cache = cache
        self.stats = QueryStoreStats()
        #: diagnostics of load-time replay failures (flight-dumped by the
        #: scheduler: replay failure means a poisoned or stale entry)
        self.replay_failures: list[dict[str, Any]] = []

    # ------------------------------------------------------------------ #
    def load(
        self, slice_fingerprint: str, goal: ReachabilityGoal, system
    ) -> tuple[Verdict, Counterexample | None] | None:
        """Look up a persisted verdict; replay-validate witnesses.

        Returns ``(verdict, counterexample)`` or ``None`` for a miss.  Any
        structural or replay problem is a miss -- never a wrong verdict.
        """
        goal_fp = goal_fingerprint(goal)
        key = self._cache.query_key_for(slice_fingerprint, goal_fp)
        entry = self._cache.get_query(key)
        if entry is None:
            return self._miss()
        reason = structural_error(entry, slice_fingerprint, goal_fp)
        if reason is not None:
            self._reject(key, goal, reason)
            return self._miss()
        if entry["verdict"] == Verdict.UNREACHABLE.value:
            self.stats.hits += 1
            perf.add("mc.query.store_hits")
            return Verdict.UNREACHABLE, None
        witness = replay_witness(system, goal, entry["witness"])
        if witness is None:
            self._reject(key, goal, "witness replay failed")
            return self._miss()
        self.stats.hits += 1
        perf.add("mc.query.store_hits")
        return Verdict.REACHABLE, witness

    def save(
        self,
        slice_fingerprint: str,
        goal: ReachabilityGoal,
        system,
        verdict: Verdict,
        counterexample: Counterexample | None,
    ) -> bool:
        """Persist a proof or witness; self-validate by replay before writing."""
        if verdict not in _PERSISTENT_VERDICTS:
            return False
        witness_payload = None
        if verdict is Verdict.REACHABLE:
            if counterexample is None:
                return False
            witness_payload = serialize_witness(system, counterexample)
            if witness_payload is None:
                return False
            # the write-side self-check: only entries that replay on the
            # system they are keyed by enter the store
            if replay_witness(system, goal, witness_payload) is None:
                return False
        goal_fp = goal_fingerprint(goal)
        key = self._cache.query_key_for(slice_fingerprint, goal_fp)
        entry = pack_entry(slice_fingerprint, goal_fp, verdict, witness_payload)
        if not self._cache.put_query(key, entry):
            return False
        self.stats.writes += 1
        perf.add("mc.query.store_writes")
        return True

    # ------------------------------------------------------------------ #
    def _miss(self) -> None:
        self.stats.misses += 1
        perf.add("mc.query.store_misses")
        return None

    def _reject(self, key: str, goal: ReachabilityGoal, reason: str) -> None:
        self.stats.replay_failures += 1
        perf.add("mc.query.replay_failures")
        self.replay_failures.append(
            {"key": key, "goal": goal.description, "reason": reason}
        )
        quarantine = getattr(self._cache, "quarantine_query", None)
        if quarantine is not None:
            quarantine(key, reason)


# ---------------------------------------------------------------------- #
# ambient wiring (mirrors repro.perf.using_registry)
# ---------------------------------------------------------------------- #
_ACTIVE_STORE: contextvars.ContextVar[QueryStore | None] = contextvars.ContextVar(
    "repro_query_store", default=None
)


def active_query_store() -> QueryStore | None:
    """The store query engines in this context persist through (if any)."""
    return _ACTIVE_STORE.get()


@contextlib.contextmanager
def using_query_store(store: QueryStore | None):
    """Make *store* the ambient query store within the ``with`` block."""
    token = _ACTIVE_STORE.set(store)
    try:
        yield store
    finally:
        _ACTIVE_STORE.reset(token)
