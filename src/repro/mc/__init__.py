"""Model checking: reachability engines, goals, results (the SAL stand-in).

Since the query-engine refactor every reachability question goes through
:mod:`repro.mc.query`: a planned, budgeted, relevance-sliced portfolio of
the explicit and symbolic engines.  :class:`ModelChecker` is the facade the
tool chain talks to.
"""

from __future__ import annotations

from .checker import ModelChecker, ModelCheckerOptions
from .explicit import ExplicitEngineOptions, ExplicitStateEngine, StateSpaceTooLarge
from .property import GoalBuilder, ReachabilityGoal
from .query import (
    EngineKind,
    PlannedQuery,
    QueryBudget,
    QueryEngine,
    QueryEngineOptions,
    QueryEngineStats,
    QueryPlan,
)
from .result import (
    BudgetExhausted,
    CheckResult,
    CheckStatistics,
    Counterexample,
    Verdict,
)
from .slicing import GoalSlice, slice_for_goal, system_fingerprint
from .store import QueryStore, active_query_store, goal_fingerprint, using_query_store
from .symbolic import SymbolicEngine, SymbolicEngineOptions

__all__ = [
    "EngineKind",
    "ModelChecker",
    "ModelCheckerOptions",
    "ExplicitEngineOptions",
    "ExplicitStateEngine",
    "StateSpaceTooLarge",
    "GoalBuilder",
    "ReachabilityGoal",
    "BudgetExhausted",
    "CheckResult",
    "CheckStatistics",
    "Counterexample",
    "Verdict",
    "GoalSlice",
    "slice_for_goal",
    "system_fingerprint",
    "QueryStore",
    "active_query_store",
    "goal_fingerprint",
    "using_query_store",
    "PlannedQuery",
    "QueryBudget",
    "QueryEngine",
    "QueryEngineOptions",
    "QueryEngineStats",
    "QueryPlan",
    "SymbolicEngine",
    "SymbolicEngineOptions",
]
