"""Model checking: reachability engines, goals, results (the SAL stand-in)."""

from __future__ import annotations

from .checker import EngineKind, ModelChecker, ModelCheckerOptions
from .explicit import ExplicitEngineOptions, ExplicitStateEngine, StateSpaceTooLarge
from .property import GoalBuilder, ReachabilityGoal
from .result import CheckResult, CheckStatistics, Counterexample, Verdict
from .symbolic import SymbolicEngine, SymbolicEngineOptions

__all__ = [
    "EngineKind",
    "ModelChecker",
    "ModelCheckerOptions",
    "ExplicitEngineOptions",
    "ExplicitStateEngine",
    "StateSpaceTooLarge",
    "GoalBuilder",
    "ReachabilityGoal",
    "CheckResult",
    "CheckStatistics",
    "Counterexample",
    "Verdict",
    "SymbolicEngine",
    "SymbolicEngineOptions",
]
