"""Model-checker facade.

:class:`ModelChecker` is what the rest of the tool chain talks to.  Since
the query-engine refactor it is a thin facade over
:class:`repro.mc.query.QueryEngine`: every check -- the two queries
test-data generation needs ("give me test data reaching this block" /
"drive execution along this exact edge sequence"), whole
:class:`~repro.mc.query.QueryPlan` batches, and the raw :meth:`check`
entry point used by the Table 2 benchmark -- is planned, optionally sliced
and budgeted by the query engine.

By default the facade keeps the historical full-model behaviour (no
slicing, no external budget) so the paper-reproduction benchmarks stay
comparable; the test-data generation layer turns slicing and budgets on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..transsys.translate import TranslationResult, edge_label
from .explicit import ExplicitEngineOptions
from .property import GoalBuilder, ReachabilityGoal
from .query import (
    EngineKind,
    QueryBudget,
    QueryEngine,
    QueryEngineOptions,
    QueryPlan,
)
from .result import CheckResult, Verdict
from .symbolic import SymbolicEngineOptions


@dataclass
class ModelCheckerOptions:
    engine: EngineKind = EngineKind.AUTO
    symbolic: SymbolicEngineOptions | None = None
    explicit: ExplicitEngineOptions | None = None
    #: explicit enumeration is attempted when the free state space has at most
    #: this many bits (AUTO mode)
    explicit_bits_threshold: int = 16
    #: query budget (None = no external budget, engine defaults apply)
    budget: QueryBudget | None = None
    #: per-goal cone-of-influence slicing (off by default: the raw facade
    #: keeps full-model semantics for the optimisation benchmarks)
    slicing: bool = False
    #: optional sound static prefilter (see
    #: :class:`repro.sa.feasibility.StaticPrefilter`) answering goals as
    #: UNREACHABLE before any solver work
    prefilter: object | None = None


class ModelChecker:
    """Reachability checking against one translated function."""

    def __init__(
        self, translation: TranslationResult, options: ModelCheckerOptions | None = None
    ):
        self._translation = translation
        self._options = options or ModelCheckerOptions()
        self._goal_builder = GoalBuilder(block_location=translation.block_location)
        self._engine = QueryEngine(
            translation,
            QueryEngineOptions(
                engine=self._options.engine,
                budget=self._options.budget,
                slicing=self._options.slicing,
                symbolic=self._options.symbolic,
                explicit=self._options.explicit,
                explicit_bits_threshold=self._options.explicit_bits_threshold,
                prefilter=self._options.prefilter,
            ),
        )

    # ------------------------------------------------------------------ #
    @property
    def system(self):
        return self._translation.system

    @property
    def goals(self) -> GoalBuilder:
        return self._goal_builder

    @property
    def query_engine(self) -> QueryEngine:
        """The underlying planner (budget/slice/memo statistics live here)."""
        return self._engine

    def check(self, goal: ReachabilityGoal) -> CheckResult:
        """Run the budgeted engine portfolio on *goal*."""
        return self._engine.check(goal)

    def run_plan(self, plan: QueryPlan) -> dict[object, CheckResult]:
        """Execute a whole query plan (shared prefixes and witnesses reused)."""
        return self._engine.run_plan(plan)

    # ------------------------------------------------------------------ #
    # the two queries test-data generation needs
    # ------------------------------------------------------------------ #
    def find_test_data_for_block(self, block_id: int) -> CheckResult:
        """Test data that makes execution reach the given CFG block."""
        return self.check(self._goal_builder.reach_block(block_id))

    def goal_for_edge_sequence(
        self, edges: list[tuple[int, int, str]]
    ) -> ReachabilityGoal:
        """The path-precise goal for a CFG edge sequence.

        ``edges`` are ``(source block, target block, edge kind value)``
        triples as produced by :mod:`repro.cfg`.
        """
        from ..cfg.graph import EdgeKind

        labels = [
            edge_label(source, target, EdgeKind(kind)) for source, target, kind in edges
        ]
        return self._goal_builder.follow_edges(labels)

    def find_test_data_for_edge_sequence(
        self, edges: list[tuple[int, int, str]]
    ) -> CheckResult:
        """Test data that drives execution along the given CFG edges in order."""
        return self.check(self.goal_for_edge_sequence(edges))

    def is_path_infeasible(self, edges: list[tuple[int, int, str]]) -> bool:
        """True when the engine *proved* that no input follows this path.

        "If no data pattern is found for a selected path the path is deemed
        infeasible." (Section 3) -- only a completed, exhaustive search counts
        as proof; an exhausted budget keeps the path in the unknown bucket.
        """
        result = self.find_test_data_for_edge_sequence(edges)
        return result.verdict is Verdict.UNREACHABLE
