"""Model-checker facade.

:class:`ModelChecker` is what the rest of the tool chain talks to: it owns a
translated model, picks an engine (symbolic by default, explicit for tiny
models or when requested) and exposes the two queries test-data generation
needs -- "give me test data reaching this block" and "give me test data
driving execution along this exact edge sequence" -- plus the raw
:meth:`check` entry point used by the Table 2 benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..transsys.translate import TranslationResult, edge_label
from .explicit import ExplicitEngineOptions, ExplicitStateEngine, StateSpaceTooLarge
from .property import GoalBuilder, ReachabilityGoal
from .result import CheckResult, Verdict
from .symbolic import SymbolicEngine, SymbolicEngineOptions


class EngineKind(enum.Enum):
    SYMBOLIC = "symbolic"
    EXPLICIT = "explicit"
    AUTO = "auto"


@dataclass
class ModelCheckerOptions:
    engine: EngineKind = EngineKind.AUTO
    symbolic: SymbolicEngineOptions | None = None
    explicit: ExplicitEngineOptions | None = None
    #: explicit enumeration is attempted when the free state space has at most
    #: this many bits (AUTO mode)
    explicit_bits_threshold: int = 16


class ModelChecker:
    """Reachability checking against one translated function."""

    def __init__(
        self, translation: TranslationResult, options: ModelCheckerOptions | None = None
    ):
        self._translation = translation
        self._options = options or ModelCheckerOptions()
        self._goal_builder = GoalBuilder(block_location=translation.block_location)

    # ------------------------------------------------------------------ #
    @property
    def system(self):
        return self._translation.system

    @property
    def goals(self) -> GoalBuilder:
        return self._goal_builder

    def check(self, goal: ReachabilityGoal) -> CheckResult:
        """Run the configured engine on *goal*."""
        engine = self._select_engine()
        return engine.check(goal)

    # ------------------------------------------------------------------ #
    # the two queries test-data generation needs
    # ------------------------------------------------------------------ #
    def find_test_data_for_block(self, block_id: int) -> CheckResult:
        """Test data that makes execution reach the given CFG block."""
        return self.check(self._goal_builder.reach_block(block_id))

    def find_test_data_for_edge_sequence(
        self, edges: list[tuple[int, int, str]]
    ) -> CheckResult:
        """Test data that drives execution along the given CFG edges in order.

        ``edges`` are ``(source block, target block, edge kind value)``
        triples as produced by :mod:`repro.cfg`.
        """
        from ..cfg.graph import EdgeKind

        labels = [
            edge_label(source, target, EdgeKind(kind)) for source, target, kind in edges
        ]
        goal = self._goal_builder.follow_edges(labels)
        return self.check(goal)

    def is_path_infeasible(self, edges: list[tuple[int, int, str]]) -> bool:
        """True when the engine *proved* that no input follows this path.

        "If no data pattern is found for a selected path the path is deemed
        infeasible." (Section 3) -- only a completed, exhaustive search counts
        as proof; an exhausted budget keeps the path in the unknown bucket.
        """
        result = self.find_test_data_for_edge_sequence(edges)
        return result.verdict is Verdict.UNREACHABLE

    # ------------------------------------------------------------------ #
    def _select_engine(self):
        kind = self._options.engine
        system = self._translation.system
        if kind is EngineKind.EXPLICIT:
            return ExplicitStateEngine(system, self._options.explicit)
        if kind is EngineKind.SYMBOLIC:
            return SymbolicEngine(system, self._options.symbolic)
        # AUTO: explicit only for very small free state spaces
        if system.initial_state_bits() <= self._options.explicit_bits_threshold:
            try:
                return ExplicitStateEngine(system, self._options.explicit)
            except StateSpaceTooLarge:  # pragma: no cover - defensive
                return SymbolicEngine(system, self._options.symbolic)
        return SymbolicEngine(system, self._options.symbolic)
