"""Explicit-state reachability engine.

Breadth-first search over concrete states ``(location, variable values)``.
The initial states enumerate every combination of the free variables' domains
(the paper's D_I); transitions are executed concretely.  This engine is exact
and produces shortest counterexamples, but its cost is literally the size of
the reachable state space -- the paper's motivation for all six state-space
optimisations.  It refuses to start when the initial state space alone exceeds
``max_initial_states``; the symbolic engine handles those models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import product

from .. import perf
from ..solver.expression import concrete_eval
from ..transsys.system import TransitionSystem
from .property import ReachabilityGoal
from .result import CheckResult, CheckStatistics, Counterexample, Verdict


class StateSpaceTooLarge(Exception):
    """Raised when explicit enumeration is hopeless for this model."""


@dataclass
class ExplicitEngineOptions:
    """Budget knobs of the explicit-state engine."""

    max_initial_states: int = 200_000
    max_explored_states: int = 2_000_000
    max_steps: int = 10_000
    #: overall time budget in seconds (None = unlimited); checked every few
    #: hundred states so a tight query deadline stops the BFS mid-search
    time_limit: float | None = None


class ExplicitStateEngine:
    """Concrete breadth-first reachability."""

    def __init__(self, system: TransitionSystem, options: ExplicitEngineOptions | None = None):
        self._system = system
        self._options = options or ExplicitEngineOptions()
        self._variable_names = sorted(system.variables)
        #: canonical instances of the value tuples (keyed by the fixed
        #: variable order above); breadth-first search revisits the same
        #: valuation many times, and interning both deduplicates the tuple
        #: storage and lets the visited-set lookups short-circuit on identity
        self._interned_values: dict[tuple[int, ...], tuple[int, ...]] = {}

    def _intern(self, values: tuple[int, ...]) -> tuple[int, ...]:
        return self._interned_values.setdefault(values, values)

    # ------------------------------------------------------------------ #
    def check(self, goal: ReachabilityGoal) -> CheckResult:
        with perf.timed("mc.explicit.check"):
            result = self._check(goal)
        perf.add("mc.explicit.checks")
        perf.add("mc.explicit.explored_states", result.statistics.explored_states)
        return result

    def _check(self, goal: ReachabilityGoal) -> CheckResult:
        started = time.perf_counter()
        deadline = (
            started + self._options.time_limit
            if self._options.time_limit is not None
            else None
        )
        stats = CheckStatistics(
            state_bits=self._system.total_state_bits(),
            transitions_in_model=len(self._system.transitions),
            sliced_state_bits=self._system.total_state_bits(),
            sliced_transitions=len(self._system.transitions),
        )
        initial_states = self._initial_states()
        state_bytes = max(1, self._system.total_state_bits() // 8)

        # queue entries: (location, values tuple, initial values tuple,
        # trace of transition indices, ordered-label progress)
        queue: list[tuple[int, tuple[int, ...], tuple[int, ...], tuple[int, ...], int]] = []
        visited: set[tuple[int, tuple[int, ...], int]] = set()
        for values in initial_states:
            values = self._intern(values)
            location = self._system.initial_location
            progress = 0
            entry = (location, values, values, (), progress)
            key = (location, values, progress)
            if key in visited:
                continue
            visited.add(key)
            queue.append(entry)
            if goal.is_trivially_reached_at(location):
                stats.time_seconds = time.perf_counter() - started
                stats.memory_bytes = len(visited) * state_bytes
                return self._reachable(values, [], stats)

        outgoing = {loc: self._system.outgoing(loc) for loc in self._system.locations()}
        transition_index = {id(t): i for i, t in enumerate(self._system.transitions)}
        head = 0
        while head < len(queue):
            location, values, init_values, trace, progress = queue[head]
            head += 1
            stats.explored_states += 1
            if stats.explored_states > self._options.max_explored_states:
                stats.time_seconds = time.perf_counter() - started
                stats.memory_bytes = len(visited) * state_bytes
                stats.stop_reason = "states"
                return CheckResult(
                    verdict=Verdict.UNKNOWN, statistics=stats,
                    goal_description=goal.description,
                )
            if deadline is not None and stats.explored_states % 256 == 0:
                if time.perf_counter() > deadline:
                    stats.time_seconds = time.perf_counter() - started
                    stats.memory_bytes = len(visited) * state_bytes
                    stats.stop_reason = "deadline"
                    return CheckResult(
                        verdict=Verdict.UNKNOWN, statistics=stats,
                        goal_description=goal.description,
                    )
            if len(trace) >= self._options.max_steps:
                continue
            assignment = dict(zip(self._variable_names, values))
            for transition in outgoing.get(location, ()):
                if transition.guard is not None:
                    if concrete_eval(transition.guard, assignment) == 0:
                        continue
                new_assignment = dict(assignment)
                for name, expr in transition.updates:
                    value = concrete_eval(expr, assignment)
                    domain = self._system.variables[name].domain
                    new_assignment[name] = min(max(value, domain.lo), domain.hi)
                new_values = self._intern(
                    tuple(new_assignment[name] for name in self._variable_names)
                )
                new_progress = goal.progress_after(transition, progress)
                new_trace = trace + (transition_index[id(transition)],)
                if goal.satisfied(transition.target, transition, new_progress):
                    stats.time_seconds = time.perf_counter() - started
                    stats.stored_states = len(visited)
                    stats.memory_bytes = len(visited) * state_bytes
                    return self._reachable(
                        init_values,
                        [self._system.transitions[i] for i in new_trace],
                        stats,
                    )
                key = (transition.target, new_values, new_progress)
                if key in visited:
                    continue
                visited.add(key)
                queue.append(
                    (transition.target, new_values, init_values, new_trace, new_progress)
                )
        stats.time_seconds = time.perf_counter() - started
        stats.stored_states = len(visited)
        stats.memory_bytes = len(visited) * state_bytes
        return CheckResult(
            verdict=Verdict.UNREACHABLE, statistics=stats, goal_description=goal.description
        )

    # ------------------------------------------------------------------ #
    def _reachable(
        self, values: tuple[int, ...], trace, stats: CheckStatistics
    ) -> CheckResult:
        initial_state = dict(zip(self._variable_names, values))
        inputs = {
            name: initial_state[name]
            for name, variable in self._system.variables.items()
            if variable.is_input
        }
        counterexample = Counterexample(
            inputs=inputs, initial_state=initial_state, trace=list(trace)
        )
        stats.steps = counterexample.steps
        return CheckResult(
            verdict=Verdict.REACHABLE, counterexample=counterexample, statistics=stats
        )

    def _initial_states(self) -> list[tuple[int, ...]]:
        sizes = 1
        free_names = []
        for name in self._variable_names:
            variable = self._system.variables[name]
            if variable.is_free:
                free_names.append(name)
                sizes *= variable.domain.size()
                if sizes > self._options.max_initial_states:
                    raise StateSpaceTooLarge(
                        f"initial state space exceeds {self._options.max_initial_states} "
                        f"states ({len(free_names)} free variables); use the symbolic engine"
                    )
        value_choices = []
        for name in self._variable_names:
            variable = self._system.variables[name]
            if variable.is_free:
                value_choices.append(
                    range(variable.domain.lo, variable.domain.hi + 1)
                )
            else:
                value_choices.append((variable.initial,))
        return [tuple(combo) for combo in product(*value_choices)]
