"""Model-checking results and cost statistics.

The statistics mirror the three columns of the paper's Table 2 -- simulation
time, memory use and steps -- plus the lower-level counters (explored states /
solver nodes) that explain them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..solver.search import SolverStatistics
from ..transsys.system import Transition


class Verdict(enum.Enum):
    """Outcome of a reachability check."""

    #: the goal is reachable; a counterexample (test vector) was produced
    REACHABLE = "reachable"
    #: the goal is unreachable -- the search space was exhausted
    UNREACHABLE = "unreachable"
    #: the engine gave up (depth/node/time budget) without an answer
    UNKNOWN = "unknown"
    #: the *query budget* ran out before any engine could answer; the WCET
    #: layer treats this as "unreached, pessimise" (the segment keeps its
    #: pessimistic charge) instead of hanging on an unbounded search
    BUDGET_EXHAUSTED = "budget-exhausted"
    #: every engine stage died on an (injected) solver fault; like budget
    #: exhaustion the WCET layer degrades to "unreached, pessimise" -- a
    #: crashing solver must never crash the analysis or shrink a bound
    ENGINE_FAULT = "engine-fault"


@dataclass(frozen=True)
class BudgetExhausted:
    """Which limit of a :class:`~repro.mc.query.QueryBudget` tripped.

    Attached to a :class:`CheckResult` whose verdict is
    :attr:`Verdict.BUDGET_EXHAUSTED` so diagnostics can say *why* the query
    gave up (deadline hit mid-search, step cap, solver-call cap).
    """

    limit: str  # "steps" | "solver_calls" | "deadline"
    spent_steps: int = 0
    spent_solver_calls: int = 0
    spent_seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"budget exhausted ({self.limit}): {self.spent_steps} steps, "
            f"{self.spent_solver_calls} solver calls, "
            f"{self.spent_seconds:.3f}s"
        )


@dataclass
class Counterexample:
    """A concrete run witnessing reachability.

    ``inputs`` restricts the witness initial state to the declared analysis
    input variables -- exactly the test data the measurement subsystem needs;
    ``initial_state`` is the full witness initial state (including values the
    checker picked for uninitialised non-input variables); ``steps`` is the
    number of transitions, the paper's "steps" column.
    """

    inputs: dict[str, int]
    initial_state: dict[str, int]
    trace: list[Transition] = field(default_factory=list)

    @property
    def steps(self) -> int:
        return len(self.trace)

    def labels(self) -> list[str]:
        collected: list[str] = []
        for transition in self.trace:
            collected.extend(transition.labels)
        return collected


@dataclass
class CheckStatistics:
    """Cost of one model-checking run (Table 2 columns + detail counters)."""

    time_seconds: float = 0.0
    memory_bytes: int = 0
    steps: int = 0
    explored_states: int = 0
    stored_states: int = 0
    solver: SolverStatistics = field(default_factory=SolverStatistics)
    state_bits: int = 0
    transitions_in_model: int = 0
    #: bits / transitions of the (possibly sliced) model the search actually
    #: ran on; equal to ``state_bits`` / ``transitions_in_model`` without
    #: slicing.  ``state_bits`` always describes the caller's full model so
    #: the Table 2 metrics stay comparable across configurations.
    sliced_state_bits: int = 0
    sliced_transitions: int = 0
    #: why an inexhaustive search stopped ("deadline", "paths", "steps",
    #: "solver_calls", "depth", "states"); None for complete searches
    stop_reason: str | None = None
    #: engine stages the query went through ("explicit", "symbolic:sliced",
    #: "symbolic:full"); filled by the query planner
    engines_tried: tuple[str, ...] = ()

    @property
    def memory_kib(self) -> float:
        return self.memory_bytes / 1024.0


@dataclass
class CheckResult:
    """Verdict + witness + statistics of one reachability check."""

    verdict: Verdict
    counterexample: Counterexample | None = None
    statistics: CheckStatistics = field(default_factory=CheckStatistics)
    goal_description: str = ""
    #: which query-budget limit tripped (verdict BUDGET_EXHAUSTED only)
    exhaustion: BudgetExhausted | None = None

    @property
    def reachable(self) -> bool:
        return self.verdict is Verdict.REACHABLE

    @property
    def proven_unreachable(self) -> bool:
        return self.verdict is Verdict.UNREACHABLE

    @property
    def budget_exhausted(self) -> bool:
        return self.verdict is Verdict.BUDGET_EXHAUSTED
