"""Symbolic reachability engine (bounded path-wise symbolic execution).

This is the workhorse engine -- the stand-in for SAL's symbolic algorithms.
It explores the transition system's control locations depth-first while
keeping the data state *symbolic*: every variable's value is an expression
over the free initial variables (or a constant).  Guard transitions add path
constraints, whose satisfiability the finite-domain solver
(:mod:`repro.solver`) decides; a satisfiable path that fulfils the goal yields
the witness initial state (= test data) by solving the accumulated path
condition.

Cost model (what the Table 2 benchmark measures):

* **time** -- wall-clock time of the search, dominated by solver queries whose
  difficulty scales with the number of free variables and their domain sizes;
* **memory** -- a deterministic estimate: the peak depth of the search stack
  times the state-vector width, plus the stored symbolic expressions and the
  solver's own peak (see :meth:`CheckStatistics.memory_bytes`);
* **steps** -- the length (number of transitions) of the counterexample.

All six optimisations of the paper influence at least one of these quantities
in the same direction they influence SAL.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..minic.ast_nodes import BoolLiteral, Expr, IntLiteral
from ..solver.constraints import Constraint
from ..solver.domain import Domain
from ..solver.expression import expression_node_count, substitute
from ..solver.search import ConstraintSolver, SolverLimitReached
from ..transsys.system import TransitionSystem
from .property import ReachabilityGoal
from .result import CheckResult, CheckStatistics, Counterexample, Verdict


@dataclass
class SymbolicEngineOptions:
    """Budget knobs of the symbolic engine."""

    #: maximum number of transitions along one explored path
    max_depth: int = 2_000
    #: maximum number of explored path prefixes
    max_paths: int = 200_000
    #: overall time budget in seconds (None = unlimited)
    time_limit: float | None = 120.0
    #: per-query node budget of the constraint solver
    solver_max_nodes: int = 100_000
    #: total solver invocations allowed for this check (None = unlimited);
    #: the query planner maps a :class:`~repro.mc.query.QueryBudget`'s
    #: solver-call limit onto this knob
    max_solver_calls: int | None = None
    #: skip solver calls for guards while exploring and only solve at the goal
    #: (faster for huge models, may explore some infeasible prefixes)
    eager_guard_checks: bool = True


@dataclass
class _PathState:
    """One entry of the DFS stack."""

    location: int
    environment: dict[str, Expr | int]
    constraints: list[Constraint]
    trace: list[int] = field(default_factory=list)
    progress: int = 0
    visits: dict[int, int] = field(default_factory=dict)


class SymbolicEngine:
    """Bounded symbolic reachability over a transition system."""

    def __init__(
        self, system: TransitionSystem, options: SymbolicEngineOptions | None = None
    ):
        self._system = system
        self._options = options or SymbolicEngineOptions()
        self._free_domains: dict[str, Domain] = {
            variable.name: Domain.from_range(variable.domain)
            for variable in system.free_variables()
        }

    # ------------------------------------------------------------------ #
    def check(self, goal: ReachabilityGoal) -> CheckResult:
        started = time.perf_counter()
        deadline = (
            started + self._options.time_limit
            if self._options.time_limit is not None
            else None
        )
        stats = CheckStatistics(
            state_bits=self._system.total_state_bits(),
            transitions_in_model=len(self._system.transitions),
            sliced_state_bits=self._system.total_state_bits(),
            sliced_transitions=len(self._system.transitions),
        )
        solver_stats_peak = 0
        state_bytes = max(1, self._system.total_state_bits() // 8)

        initial_env: dict[str, Expr | int] = {}
        for name, variable in self._system.variables.items():
            if variable.is_free:
                initial_env[name] = _symbol(name)
            else:
                initial_env[name] = int(variable.initial or 0)

        outgoing = {loc: self._system.outgoing(loc) for loc in self._system.locations()}
        transition_index = {id(t): i for i, t in enumerate(self._system.transitions)}

        root = _PathState(
            location=self._system.initial_location,
            environment=initial_env,
            constraints=[],
        )
        if goal.is_trivially_reached_at(root.location):
            witness = self._solve_witness(root, stats)
            if witness is not None:
                stats.time_seconds = time.perf_counter() - started
                return witness

        stack: list[_PathState] = [root]
        exhausted_completely = True
        peak_stack = 1
        while stack:
            if deadline is not None and time.perf_counter() > deadline:
                exhausted_completely = False
                stats.stop_reason = "deadline"
                break
            if (
                self._options.max_solver_calls is not None
                and stats.solver.solve_calls >= self._options.max_solver_calls
            ):
                exhausted_completely = False
                stats.stop_reason = "solver_calls"
                break
            state = stack.pop()
            stats.explored_states += 1
            if stats.explored_states > self._options.max_paths:
                exhausted_completely = False
                stats.stop_reason = "paths"
                break
            peak_stack = max(peak_stack, len(stack) + 1)
            symbolic_bytes = sum(
                expression_node_count(value) * 24
                for value in state.environment.values()
                if not isinstance(value, int)
            )
            constraint_bytes = sum(
                expression_node_count(c.expr) * 24 for c in state.constraints
            )
            stats.memory_bytes = max(
                stats.memory_bytes,
                peak_stack * state_bytes + symbolic_bytes + constraint_bytes + solver_stats_peak,
            )

            if len(state.trace) >= self._options.max_depth:
                exhausted_completely = False
                if stats.stop_reason is None:
                    stats.stop_reason = "depth"
                continue

            for transition in reversed(outgoing.get(state.location, ())):
                guard_value = self._evaluate_guard(transition.guard, state.environment)
                if guard_value is False:
                    continue
                new_constraints = state.constraints
                if guard_value is None:
                    symbolic_guard = substitute(transition.guard, state.environment)
                    new_constraints = state.constraints + [Constraint(symbolic_guard)]
                    if self._options.eager_guard_checks:
                        feasible, solver_peak = self._satisfiable(new_constraints, stats)
                        solver_stats_peak = max(solver_stats_peak, solver_peak)
                        if not feasible:
                            continue
                new_env = dict(state.environment)
                if transition.updates:
                    snapshot = state.environment
                    for name, expr in transition.updates:
                        new_env[name] = self._apply_update(expr, snapshot)
                new_progress = goal.progress_after(transition, state.progress)
                new_trace = state.trace + [transition_index[id(transition)]]
                successor = _PathState(
                    location=transition.target,
                    environment=new_env,
                    constraints=new_constraints,
                    trace=new_trace,
                    progress=new_progress,
                    visits=dict(state.visits),
                )
                successor.visits[transition.target] = (
                    successor.visits.get(transition.target, 0) + 1
                )
                if successor.visits[transition.target] > 64:
                    # crude loop bound: stop unrolling after 64 visits of one
                    # location on a single path
                    exhausted_completely = False
                    if stats.stop_reason is None:
                        stats.stop_reason = "depth"
                    continue
                if goal.satisfied(transition.target, transition, new_progress):
                    witness = self._solve_witness(successor, stats)
                    if witness is not None:
                        stats.time_seconds = time.perf_counter() - started
                        stats.stored_states = peak_stack
                        return witness
                    # path condition unsatisfiable after all: prune
                    continue
                stack.append(successor)

        stats.time_seconds = time.perf_counter() - started
        stats.stored_states = peak_stack
        verdict = Verdict.UNREACHABLE if exhausted_completely else Verdict.UNKNOWN
        return CheckResult(verdict=verdict, statistics=stats, goal_description=goal.description)

    # ------------------------------------------------------------------ #
    def _apply_update(self, expr: Expr, environment: dict[str, Expr | int]) -> Expr | int:
        substituted = substitute(expr, environment)
        if isinstance(substituted, IntLiteral):
            return substituted.value
        if isinstance(substituted, BoolLiteral):
            return int(substituted.value)
        return substituted

    @staticmethod
    def _evaluate_guard(
        guard: Expr | None, environment: dict[str, Expr | int]
    ) -> bool | None:
        """Concrete guard value if determinable, else ``None`` (symbolic)."""
        if guard is None:
            return True
        folded = substitute(guard, environment)
        if isinstance(folded, IntLiteral):
            return folded.value != 0
        if isinstance(folded, BoolLiteral):
            return bool(folded.value)
        return None

    def _satisfiable(
        self, constraints: list[Constraint], stats: CheckStatistics
    ) -> tuple[bool, int]:
        solver = ConstraintSolver(
            dict(self._free_domains),
            constraints,
            max_nodes=self._options.solver_max_nodes,
        )
        try:
            satisfiable = solver.is_satisfiable()
        except SolverLimitReached:
            satisfiable = True  # assume feasible; the final witness solve decides
        stats.solver.merge(solver.statistics)
        return satisfiable, solver.statistics.peak_memory_bytes

    def _solve_witness(self, state: _PathState, stats: CheckStatistics) -> CheckResult | None:
        solver = ConstraintSolver(
            dict(self._free_domains),
            state.constraints,
            max_nodes=self._options.solver_max_nodes,
        )
        try:
            solution = solver.solve()
        except SolverLimitReached:
            solution = None
        stats.solver.merge(solver.statistics)
        if solution is None:
            return None
        initial_state = dict(solution.assignment)
        for name, variable in self._system.variables.items():
            if not variable.is_free:
                initial_state[name] = int(variable.initial or 0)
            initial_state.setdefault(name, variable.domain.lo)
        inputs = {
            name: initial_state[name]
            for name, variable in self._system.variables.items()
            if variable.is_input
        }
        trace = [self._system.transitions[i] for i in state.trace]
        counterexample = Counterexample(
            inputs=inputs, initial_state=initial_state, trace=trace
        )
        stats.steps = counterexample.steps
        stats.stop_reason = None  # the search succeeded; earlier pruning is moot
        return CheckResult(
            verdict=Verdict.REACHABLE, counterexample=counterexample, statistics=stats
        )


def _symbol(name: str) -> Expr:
    """A symbolic occurrence of an initial-state variable."""
    from ..minic.ast_nodes import Identifier

    return Identifier(name=name)
