"""Planned, budgeted, sliced reachability queries -- the unified query engine.

Every model-checking question the WCET tool chain asks ("reach this block",
"follow this edge sequence") goes through one subsystem:

* a :class:`QueryPlan` batches all goals of one function and inserts
  *feasibility probes* for path prefixes shared by several edge-sequence
  goals -- an infeasible shared prefix proves every extension infeasible
  with a single query;
* a :class:`QueryEngine` runs each goal through a budgeted engine
  portfolio: explicit enumeration when the (sliced) initial state space is
  small, then symbolic search on the goal's cone-of-influence slice
  (:mod:`repro.mc.slicing`), escalating to the full model only when the
  slice could not answer;
* a :class:`QueryBudget` bounds every query with step / solver-call /
  deadline limits; when the budget runs out the result carries the typed
  :class:`~repro.mc.result.BudgetExhausted` verdict, which the WCET layer
  treats as "unreached, pessimise" instead of hanging on an unbounded
  search;
* witnesses are memoised per ``(slice fingerprint, goal)`` and replayed
  against later goals of the batch (a witness that reaches block 40 through
  block 17 also answers the block-17 query), and proven-infeasible label
  sequences subsume every extension;
* when a persistent :class:`~repro.mc.store.QueryStore` is ambient
  (:func:`~repro.mc.store.using_query_store`), settled verdicts and
  witnesses survive the process: they are written through the crash-safe
  result cache keyed by the *content* fingerprint of the sliced system, and
  loaded back -- witness-replay-validated -- before any engine runs, so a
  warm run answers every planned query from disk with zero solver calls.

Progress is surfaced through :mod:`repro.perf`: counters ``mc.query.*``
(planned / sliced / cache_hits / escalations / budget_exhausted /
prefix_hits / witness_reuse / store_hits / store_misses / store_writes /
replay_failures / solver_runs / static_prunes) and timers ``mc.plan`` /
``mc.slice`` / ``mc.solve``.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from dataclasses import dataclass, replace

from .. import obs, perf
from ..resilience import InjectedFault, maybe_fault, poll_deadline
from ..transsys.translate import TranslationResult
from .explicit import ExplicitEngineOptions, ExplicitStateEngine, StateSpaceTooLarge
from .property import ReachabilityGoal
from .result import (
    BudgetExhausted,
    CheckResult,
    CheckStatistics,
    Counterexample,
    Verdict,
)
from .slicing import (
    GoalSlice,
    forward_reachable_locations,
    slice_for_goal,
    system_fingerprint,
)
from .store import QueryStore, active_query_store
from .symbolic import SymbolicEngine, SymbolicEngineOptions


class EngineKind(enum.Enum):
    SYMBOLIC = "symbolic"
    EXPLICIT = "explicit"
    AUTO = "auto"


@dataclass(frozen=True)
class QueryBudget:
    """Hard limits of one reachability query, across all portfolio stages.

    ``None`` disables the respective limit.  The defaults match the
    symbolic engine's historical own bounds, so an un-tuned budget changes
    nothing except that exhaustion becomes an explicit, typed verdict.
    """

    #: total explored states/paths across all engine stages
    max_steps: int | None = 200_000
    #: total constraint-solver invocations across all engine stages
    max_solver_calls: int | None = None
    #: wall-clock deadline for the whole query in milliseconds
    deadline_ms: int | None = 120_000

    @classmethod
    def unlimited(cls) -> "QueryBudget":
        return cls(max_steps=None, max_solver_calls=None, deadline_ms=None)

    @property
    def deadline_seconds(self) -> float | None:
        return self.deadline_ms / 1000.0 if self.deadline_ms is not None else None


@dataclass(frozen=True)
class PlannedQuery:
    """One goal of a query plan.

    ``key`` is the caller's handle (the test-data generator uses the path
    target's key); probes carry synthetic keys and are executed only for
    their side effects on the shared infeasible-prefix/witness bookkeeping.
    """

    key: object
    goal: ReachabilityGoal
    is_probe: bool = False


#: ("fixed" policy) a prefix probe is worth a query when at least this many
#: goals share it
PREFIX_PROBE_THRESHOLD = 3

#: probe when the expected subsumption savings beat the probe cost (default)
PROBE_POLICY_ADAPTIVE = "adaptive"
#: the historical fixed >= :data:`PREFIX_PROBE_THRESHOLD` sharers rule
PROBE_POLICY_FIXED = "fixed"


class QueryPlan:
    """All reachability goals of one function, ordered for shared work.

    Edge-sequence goals are clustered lexicographically by their label
    sequences so goals sharing prefixes run back to back (maximising
    witness reuse and prefix subsumption), and shared prefixes worth
    probing get a feasibility probe that runs first: one UNREACHABLE probe
    answers every goal extending it.  Which prefixes are worth it is the
    probe policy's call -- ``adaptive`` (default) weighs expected savings
    against probe cost, ``fixed`` keeps the historical "at least
    :data:`PREFIX_PROBE_THRESHOLD` sharers" rule.
    """

    def __init__(self, items: list[PlannedQuery]):
        self.items = items

    @property
    def goal_count(self) -> int:
        return sum(1 for item in self.items if not item.is_probe)

    @property
    def probe_count(self) -> int:
        return sum(1 for item in self.items if item.is_probe)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        goals: list[tuple[object, ReachabilityGoal]],
        probe_threshold: int = PREFIX_PROBE_THRESHOLD,
        probe_policy: str = PROBE_POLICY_ADAPTIVE,
    ) -> "QueryPlan":
        with obs.span("mc.plan", goals=len(goals)), perf.timed("mc.plan"):
            ordered_goals = sorted(
                goals,
                key=lambda item: (item[1].ordered_labels, item[1].description),
            )
            sequences = [
                goal.ordered_labels
                for _, goal in ordered_goals
                if goal.ordered_labels
                and not goal.target_locations
                and not goal.target_labels
            ]
            if probe_policy == PROBE_POLICY_FIXED:
                prefixes = cls._shared_prefixes(sequences, probe_threshold)
            else:
                prefixes = cls._adaptive_prefixes(sequences)
            probes = [
                PlannedQuery(
                    key=("probe", prefix),
                    goal=ReachabilityGoal(
                        ordered_labels=prefix,
                        description="prefix probe " + " -> ".join(prefix),
                    ),
                    is_probe=True,
                )
                for prefix in prefixes
            ]
            items = probes + [
                PlannedQuery(key=key, goal=goal) for key, goal in ordered_goals
            ]
        return cls(items)

    @staticmethod
    def _shared_prefixes(
        sequences: list[tuple[str, ...]], threshold: int
    ) -> list[tuple[str, ...]]:
        """Deepest branching prefixes shared by >= *threshold* sequences."""
        counts: dict[tuple[str, ...], int] = {}
        continuations: dict[tuple[str, ...], set[str]] = {}
        for sequence in sequences:
            for cut in range(1, len(sequence)):
                prefix = sequence[:cut]
                counts[prefix] = counts.get(prefix, 0) + 1
                continuations.setdefault(prefix, set()).add(sequence[cut])
        candidates = {
            prefix
            for prefix, count in counts.items()
            if count >= threshold and len(continuations[prefix]) >= 2
        }
        return QueryPlan._deepest(candidates)

    @staticmethod
    def _adaptive_prefixes(
        sequences: list[tuple[str, ...]],
    ) -> list[tuple[str, ...]]:
        """Branching prefixes whose probe is expected to pay for itself.

        A probe costs roughly one search over the prefix (``len(prefix)``
        path steps).  If it proves the prefix infeasible it saves every
        sharer's full search: ``count * len(prefix)`` shared steps plus the
        sharers' extension steps beyond the prefix.  Probing is worth it
        when the potential saving is a healthy multiple of the cost --
        ``count*len(p) + extension_steps >= 4*len(p)`` -- so *two* goals
        sharing a deep prefix with long tails get a probe the fixed >= 3
        rule would skip, while several goals sharing a long prefix with
        tiny tails (the probe costs nearly as much as just answering them)
        do not.
        """
        counts: dict[tuple[str, ...], int] = {}
        continuations: dict[tuple[str, ...], set[str]] = {}
        extension_steps: dict[tuple[str, ...], int] = {}
        for sequence in sequences:
            for cut in range(1, len(sequence)):
                prefix = sequence[:cut]
                counts[prefix] = counts.get(prefix, 0) + 1
                continuations.setdefault(prefix, set()).add(sequence[cut])
                extension_steps[prefix] = extension_steps.get(prefix, 0) + (
                    len(sequence) - cut
                )
        candidates = {
            prefix
            for prefix, count in counts.items()
            if count >= 2
            and len(continuations[prefix]) >= 2
            and count * len(prefix) + extension_steps[prefix] >= 4 * len(prefix)
        }
        return QueryPlan._deepest(candidates)

    @staticmethod
    def _deepest(candidates: set[tuple[str, ...]]) -> list[tuple[str, ...]]:
        """Drop candidates that another candidate extends (probe deepest)."""
        return sorted(
            prefix
            for prefix in candidates
            if not any(
                other != prefix and other[: len(prefix)] == prefix
                for other in candidates
            )
        )


@dataclass
class QueryEngineOptions:
    """Configuration of the query engine (budget + portfolio + slicing)."""

    engine: EngineKind = EngineKind.AUTO
    #: None = no external budget (the engines' own defaults still apply)
    budget: QueryBudget | None = None
    slicing: bool = True
    symbolic: SymbolicEngineOptions | None = None
    explicit: ExplicitEngineOptions | None = None
    #: explicit enumeration is attempted when the free state space of the
    #: (sliced) model has at most this many bits
    explicit_bits_threshold: int = 16
    #: optional sound static prefilter (duck-typed, see
    #: :class:`repro.sa.feasibility.StaticPrefilter`): anything exposing
    #: ``goal_is_unreachable(goal, location_block) -> bool`` whose True
    #: answers are *proofs* of unreachability
    prefilter: object | None = None


@dataclass
class QueryEngineStats:
    """In-process counters of one query engine (mirrored into repro.perf)."""

    planned: int = 0
    sliced: int = 0
    cache_hits: int = 0
    escalations: int = 0
    budget_exhausted: int = 0
    prefix_hits: int = 0
    witness_reuse: int = 0
    #: queries degraded to ENGINE_FAULT because every stage's solver died
    #: on an injected fault
    engine_faults: int = 0
    #: queries answered from the persistent store (replay-validated)
    store_hits: int = 0
    #: store lookups that found nothing usable (absent, corrupt or stale)
    store_misses: int = 0
    #: verdicts/witnesses persisted to the store by this engine
    store_writes: int = 0
    #: store entries rejected because their witness failed to replay
    replay_failures: int = 0
    #: engine-portfolio stage executions (zero on a fully warm run)
    solver_runs: int = 0
    #: goals settled UNREACHABLE by the static prefilter (no solver call)
    static_prunes: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class QueryEngine:
    """Budgeted, sliced reachability checking against one translated function."""

    def __init__(
        self,
        translation: TranslationResult,
        options: QueryEngineOptions | None = None,
    ):
        self._translation = translation
        self._options = options or QueryEngineOptions()
        self.stats = QueryEngineStats()
        #: content fingerprint of the full model (computed on first use;
        #: the store key of goals whose slice removed nothing)
        self._full_fingerprint: str | None = None
        #: forward-reachable locations of the full model (goal-independent)
        self._forward: frozenset[int] | None = None
        #: goal-seed -> GoalSlice (many goals share one slice)
        self._slices: dict[object, GoalSlice | None] = {}
        #: (slice fingerprint, goal) -> memoised result
        self._memo: dict[tuple[str, ReachabilityGoal], CheckResult] = {}
        #: label sequences proven infeasible (subsume every extension)
        self._infeasible_prefixes: list[tuple[str, ...]] = []
        #: completed witnesses, replayed against later goals of a batch
        self._witnesses: list[Counterexample] = []

    # ------------------------------------------------------------------ #
    @property
    def translation(self) -> TranslationResult:
        return self._translation

    def run_plan(self, plan: QueryPlan) -> dict[object, CheckResult]:
        """Execute every goal of *plan*; probes feed the shared bookkeeping."""
        results: dict[object, CheckResult] = {}
        for item in plan.items:
            result = self.check(item.goal)
            if not item.is_probe:
                results[item.key] = result
        return results

    def check(self, goal: ReachabilityGoal) -> CheckResult:
        """Answer one reachability goal within the configured budget."""
        self.stats.planned += 1
        perf.add("mc.query.planned")

        # 0. sound static prefilter: goals the interval analysis proved
        #    unreachable are settled before slicing or any engine work.
        #    Deliberately neither memoised nor persisted -- the proof is
        #    free to recompute, and warm-run store gates (store_hits ==
        #    planned) keep counting only solver-shaped queries.
        prefilter = self._options.prefilter
        if prefilter is not None and prefilter.goal_is_unreachable(
            goal, self._translation.location_block
        ):
            self.stats.static_prunes += 1
            perf.add("mc.query.static_prunes")
            return CheckResult(
                verdict=Verdict.UNREACHABLE,
                statistics=self._empty_statistics(),
                goal_description=goal.description,
            )

        # 1. per-(slice content, goal) memo -- in-process; unlike the
        #    persistent store it also remembers UNKNOWN/BUDGET_EXHAUSTED
        goal_slice = self._slice_for(goal)
        fingerprint = self._content_fingerprint(goal_slice)
        memo_key = (fingerprint, goal)
        cached = self._memo.get(memo_key)
        if cached is not None:
            self.stats.cache_hits += 1
            perf.add("mc.query.cache_hits")
            # a fresh result shell charging (near) zero time: the hit did not
            # re-run the search, and handing out the memoised statistics
            # object would double-bill the original query's cost per sibling
            return replace(
                cached, statistics=replace(cached.statistics, time_seconds=0.0)
            )

        # 2. the persistent store: replay-validated verdicts from earlier
        #    runs (and from other functions sharing this cone).  Checked
        #    before prefix subsumption and witness reuse so a warm run
        #    answers *every* first-seen goal from disk (store_hits ==
        #    planned), which is what the zero-solver-calls gate measures.
        store = active_query_store()
        replay_system = self._replay_system(goal_slice)
        if store is not None:
            failures_before = store.stats.replay_failures
            loaded = store.load(fingerprint, goal, replay_system)
            self.stats.replay_failures += (
                store.stats.replay_failures - failures_before
            )
            if loaded is not None:
                self.stats.store_hits += 1
                result = self._from_store(goal, goal_slice, *loaded)
                self._note_outcome(goal, result)
                self._memo[memo_key] = result
                return result
            self.stats.store_misses += 1

        # 3. a proven-infeasible prefix subsumes every extension
        if (
            goal.ordered_labels
            and not goal.target_locations
            and not goal.target_labels
        ):
            for prefix in self._infeasible_prefixes:
                if goal.ordered_labels[: len(prefix)] == prefix:
                    self.stats.prefix_hits += 1
                    perf.add("mc.query.prefix_hits")
                    result = CheckResult(
                        verdict=Verdict.UNREACHABLE,
                        statistics=self._empty_statistics(),
                        goal_description=goal.description,
                    )
                    # subsumption derives from a proof over this system, so
                    # the verdict is as persistable as the proof itself
                    self._persist(store, fingerprint, goal, replay_system, result)
                    return result

        # 4. an earlier witness may already answer this goal
        reused = self._covered_by_known_witness(goal)
        if reused is not None:
            self.stats.witness_reuse += 1
            perf.add("mc.query.witness_reuse")
            self._memo[memo_key] = reused
            self._persist(store, fingerprint, goal, replay_system, reused)
            return reused

        # 5. the budgeted engine portfolio
        result = self._run_portfolio(goal, goal_slice)

        # 6. bookkeeping for the rest of the batch (and later runs)
        self._note_outcome(goal, result)
        if result.verdict is not Verdict.ENGINE_FAULT:
            # a faulted query is a property of this run's fault plan, not of
            # the goal: memoising it would let one injected crash answer
            # later sibling goals with a degraded verdict
            self._memo[memo_key] = result
            self._persist(store, fingerprint, goal, replay_system, result)
        return result

    # ------------------------------------------------------------------ #
    # persistent store plumbing
    # ------------------------------------------------------------------ #
    def _content_fingerprint(self, goal_slice: GoalSlice | None) -> str:
        """The store/memo key component: content hash of the search model.

        A slice that removed nothing hashes identically to the full system,
        so "no slicing" and "improper slice" share entries by construction.
        """
        if goal_slice is not None:
            return goal_slice.fingerprint
        if self._full_fingerprint is None:
            self._full_fingerprint = system_fingerprint(self._translation.system)
        return self._full_fingerprint

    def _replay_system(self, goal_slice: GoalSlice | None):
        """The system witnesses are serialised against and replayed on."""
        if goal_slice is not None and goal_slice.is_proper:
            return goal_slice.translation.system
        return self._translation.system

    def _note_outcome(self, goal: ReachabilityGoal, result: CheckResult) -> None:
        """Feed a settled result into the batch-shared bookkeeping."""
        if (
            result.verdict is Verdict.UNREACHABLE
            and goal.ordered_labels
            and not goal.target_locations
            and not goal.target_labels
        ):
            self._infeasible_prefixes.append(tuple(goal.ordered_labels))
        if result.verdict is Verdict.REACHABLE and result.counterexample is not None:
            if result.counterexample.trace:
                self._witnesses.append(result.counterexample)

    def _persist(
        self,
        store: QueryStore | None,
        fingerprint: str,
        goal: ReachabilityGoal,
        replay_system,
        result: CheckResult,
    ) -> None:
        if store is None:
            return
        if store.save(
            fingerprint, goal, replay_system, result.verdict, result.counterexample
        ):
            self.stats.store_writes += 1

    def _from_store(
        self,
        goal: ReachabilityGoal,
        goal_slice: GoalSlice | None,
        verdict: Verdict,
        counterexample: Counterexample | None,
    ) -> CheckResult:
        """Materialise a store hit as a full-model result.

        The replayed witness lives on the sliced system.  For every
        variable of the full model the stored value is used when it is
        valid here (an integer, in domain, matching a fixed initial), and
        re-completed exactly like :meth:`_complete_counterexample` would
        otherwise -- so a same-function warm hit is bit-identical to the
        cold result it memoises, while a cross-function hit gets sound
        deterministic values for the variables the producer never had.
        """
        stats = self._empty_statistics()
        if verdict is Verdict.REACHABLE and counterexample is not None:
            stored = counterexample.initial_state
            initial_state: dict[str, int] = {}
            for name, variable in self._translation.system.variables.items():
                value = stored.get(name)
                if (
                    isinstance(value, int)
                    and not isinstance(value, bool)
                    and variable.domain.lo <= value <= variable.domain.hi
                    and (variable.initial is None or value == variable.initial)
                ):
                    initial_state[name] = value
                else:
                    initial_state[name] = (
                        variable.initial
                        if variable.initial is not None
                        else variable.domain.lo
                    )
            inputs = {
                name: initial_state[name]
                for name, variable in self._translation.system.variables.items()
                if variable.is_input
            }
            counterexample = Counterexample(
                inputs=inputs,
                initial_state=initial_state,
                trace=list(counterexample.trace),
            )
            stats.steps = counterexample.steps
            return CheckResult(
                verdict=Verdict.REACHABLE,
                counterexample=counterexample,
                statistics=stats,
                goal_description=goal.description,
            )
        return CheckResult(
            verdict=Verdict.UNREACHABLE,
            statistics=stats,
            goal_description=goal.description,
        )

    # ------------------------------------------------------------------ #
    # slicing
    # ------------------------------------------------------------------ #
    def _slice_for(self, goal: ReachabilityGoal) -> GoalSlice | None:
        if not self._options.slicing:
            return None
        seed = (
            goal.target_locations,
            goal.target_labels,
            goal.ordered_labels[-1] if goal.ordered_labels else None,
        )
        if seed in self._slices:
            return self._slices[seed]
        if self._forward is None:
            self._forward = forward_reachable_locations(self._translation.system)
        with perf.timed("mc.slice"):
            goal_slice = slice_for_goal(self._translation, goal, self._forward)
        if goal_slice.is_proper:
            self.stats.sliced += 1
            perf.add("mc.query.sliced")
        self._slices[seed] = goal_slice
        return goal_slice

    # ------------------------------------------------------------------ #
    # witness reuse
    # ------------------------------------------------------------------ #
    def _covered_by_known_witness(self, goal: ReachabilityGoal) -> CheckResult | None:
        for witness in self._witnesses:
            progress = 0
            for index, transition in enumerate(witness.trace):
                progress = goal.progress_after(transition, progress)
                if goal.satisfied(transition.target, transition, progress):
                    counterexample = Counterexample(
                        inputs=dict(witness.inputs),
                        initial_state=dict(witness.initial_state),
                        trace=list(witness.trace[: index + 1]),
                    )
                    stats = self._empty_statistics()
                    stats.steps = counterexample.steps
                    return CheckResult(
                        verdict=Verdict.REACHABLE,
                        counterexample=counterexample,
                        statistics=stats,
                        goal_description=goal.description,
                    )
        return None

    # ------------------------------------------------------------------ #
    # the portfolio
    # ------------------------------------------------------------------ #
    def _stages(
        self, goal_slice: GoalSlice | None
    ) -> list[tuple[str, TranslationResult]]:
        """(label, model) stages in escalation order for this goal."""
        sliced = (
            goal_slice.translation
            if goal_slice is not None and goal_slice.is_proper
            else None
        )
        base = sliced if sliced is not None else self._translation
        kind = self._options.engine
        stages: list[tuple[str, TranslationResult]] = []
        if kind is EngineKind.EXPLICIT:
            return [("explicit", base)]
        if kind is EngineKind.AUTO:
            bits = base.system.initial_state_bits()
            if bits <= self._options.explicit_bits_threshold:
                stages.append(("explicit", base))
        label = "symbolic:sliced" if sliced is not None else "symbolic:full"
        stages.append((label, base))
        if sliced is not None:
            stages.append(("symbolic:full", self._translation))
        return stages

    def _run_portfolio(
        self, goal: ReachabilityGoal, goal_slice: GoalSlice | None
    ) -> CheckResult:
        budget = self._options.budget
        started = time.perf_counter()
        deadline = (
            started + budget.deadline_seconds
            if budget is not None and budget.deadline_seconds is not None
            else None
        )
        spent_steps = 0
        spent_solver_calls = 0
        stages = self._stages(goal_slice)
        engines_tried: list[str] = []
        last: CheckResult | None = None
        tripped_before_stage: str | None = None

        solver_faults: list[InjectedFault] = []
        for index, (label, model) in enumerate(stages):
            # the per-job wall-clock deadline (scheduler resilience) is
            # polled between stages -- solver stages are the long-running
            # part of a job besides interpreter runs
            poll_deadline()
            tripped_before_stage = self._budget_spent(
                budget, deadline, spent_steps, spent_solver_calls
            )
            if tripped_before_stage is not None:
                break
            engine = self._build_engine(
                label, model, budget, deadline, spent_steps, spent_solver_calls
            )
            try:
                with obs.span("mc.solve", engine=label), perf.timed("mc.solve"):
                    maybe_fault("mc.solve", goal.description)
                    # the warm-run gate: a run answered entirely from memo,
                    # subsumption and the store executes zero engine stages
                    self.stats.solver_runs += 1
                    perf.add("mc.query.solver_runs")
                    result = engine.check(goal)
            except StateSpaceTooLarge:
                if self._options.engine is EngineKind.EXPLICIT:
                    raise  # a forced engine does not fall through
                continue
            except InjectedFault as fault:
                # a (simulated) solver crash fails this stage only; later
                # stages may still answer, and an unanswered goal degrades
                # to the typed ENGINE_FAULT verdict instead of raising
                solver_faults.append(fault)
                continue
            engines_tried.append(label)
            spent_steps += result.statistics.explored_states
            spent_solver_calls += result.statistics.solver.solve_calls
            last = result
            if result.verdict in (Verdict.REACHABLE, Verdict.UNREACHABLE):
                break
            if index + 1 < len(stages):
                self.stats.escalations += 1
                perf.add("mc.query.escalations")

        if last is None and solver_faults:
            # every stage that ran died on an injected solver fault: degrade
            # to a typed verdict ("unreached, pessimise"), never raise
            self.stats.engine_faults += 1
            perf.add("mc.query.engine_faults")
            stats = self._empty_statistics()
            stats.engines_tried = tuple(engines_tried)
            stats.stop_reason = "engine-fault"
            stats.time_seconds = time.perf_counter() - started
            return CheckResult(
                verdict=Verdict.ENGINE_FAULT,
                statistics=stats,
                goal_description=goal.description,
            )
        return self._finalize(
            goal, goal_slice, last, engines_tried, budget,
            spent_steps, spent_solver_calls, time.perf_counter() - started,
            tripped_before_stage,
        )

    @staticmethod
    def _budget_spent(
        budget: QueryBudget | None,
        deadline: float | None,
        spent_steps: int,
        spent_solver_calls: int,
    ) -> str | None:
        """The budget limit already used up before a stage, if any."""
        if budget is None:
            return None
        if budget.max_steps is not None and spent_steps >= budget.max_steps:
            return "steps"
        if (
            budget.max_solver_calls is not None
            and spent_solver_calls >= budget.max_solver_calls
        ):
            return "solver_calls"
        if deadline is not None and time.perf_counter() >= deadline:
            return "deadline"
        return None

    def _build_engine(
        self,
        label: str,
        model: TranslationResult,
        budget: QueryBudget | None,
        deadline: float | None,
        spent_steps: int,
        spent_solver_calls: int,
    ):
        remaining_time = (
            max(0.0, deadline - time.perf_counter()) if deadline is not None else None
        )
        if label == "explicit":
            options = self._options.explicit or ExplicitEngineOptions()
            if budget is not None and budget.max_steps is not None:
                options = replace(
                    options,
                    max_explored_states=min(
                        options.max_explored_states, budget.max_steps - spent_steps
                    ),
                )
            if remaining_time is not None:
                limit = options.time_limit
                options = replace(
                    options,
                    time_limit=remaining_time
                    if limit is None
                    else min(limit, remaining_time),
                )
            return ExplicitStateEngine(model.system, options)
        options = self._options.symbolic or SymbolicEngineOptions()
        if budget is not None and budget.max_steps is not None:
            options = replace(
                options,
                max_paths=min(options.max_paths, budget.max_steps - spent_steps),
            )
        if budget is not None and budget.max_solver_calls is not None:
            remaining_calls = budget.max_solver_calls - spent_solver_calls
            limit = options.max_solver_calls
            options = replace(
                options,
                max_solver_calls=remaining_calls
                if limit is None
                else min(limit, remaining_calls),
            )
        if remaining_time is not None:
            limit = options.time_limit
            options = replace(
                options,
                time_limit=remaining_time
                if limit is None
                else min(limit, remaining_time),
            )
        return SymbolicEngine(model.system, options)

    # ------------------------------------------------------------------ #
    def _finalize(
        self,
        goal: ReachabilityGoal,
        goal_slice: GoalSlice | None,
        last: CheckResult | None,
        engines_tried: list[str],
        budget: QueryBudget | None,
        spent_steps: int,
        spent_solver_calls: int,
        elapsed: float,
        tripped_before_stage: str | None,
    ) -> CheckResult:
        if last is None:
            last = CheckResult(
                verdict=Verdict.UNKNOWN,
                statistics=self._empty_statistics(),
                goal_description=goal.description,
            )
        stats = last.statistics
        # statistics always describe the caller's full model; the sliced
        # fields record what the search actually ran on
        original = self._translation.system
        stats.state_bits = original.total_state_bits()
        stats.transitions_in_model = len(original.transitions)
        stats.engines_tried = tuple(engines_tried)
        stats.time_seconds = elapsed
        stats.explored_states = spent_steps
        if (
            last.verdict is Verdict.REACHABLE
            and last.counterexample is not None
            and goal_slice is not None
            and goal_slice.dropped_variables
        ):
            last.counterexample = self._complete_counterexample(last.counterexample)

        if last.verdict is Verdict.UNKNOWN and budget is not None:
            limit = tripped_before_stage or self._tripped_limit(
                budget, spent_steps, spent_solver_calls, elapsed, stats.stop_reason
            )
            if limit is not None:
                self.stats.budget_exhausted += 1
                perf.add("mc.query.budget_exhausted")
                return CheckResult(
                    verdict=Verdict.BUDGET_EXHAUSTED,
                    statistics=stats,
                    goal_description=goal.description,
                    exhaustion=BudgetExhausted(
                        limit=limit,
                        spent_steps=spent_steps,
                        spent_solver_calls=spent_solver_calls,
                        spent_seconds=elapsed,
                    ),
                )
        return last

    @staticmethod
    def _tripped_limit(
        budget: QueryBudget,
        spent_steps: int,
        spent_solver_calls: int,
        elapsed: float,
        stop_reason: str | None,
    ) -> str | None:
        """Which budget limit actually stopped the search, if any.

        The engine's ``stop_reason`` disambiguates: an UNKNOWN caused by the
        engine's own internal bounds (depth, loop-unrolling) near a budget
        boundary must stay a plain UNKNOWN, not be misattributed to the
        budget.
        """
        if (
            stop_reason in ("paths", "states")
            and budget.max_steps is not None
            and spent_steps >= budget.max_steps
        ):
            return "steps"
        if (
            stop_reason == "solver_calls"
            and budget.max_solver_calls is not None
            and spent_solver_calls >= budget.max_solver_calls
        ):
            return "solver_calls"
        deadline = budget.deadline_seconds
        if (
            stop_reason == "deadline"
            and deadline is not None
            and elapsed >= deadline * 0.98
        ):
            # the 2% slack covers the engine stopping just short of the
            # absolute deadline between two poll points; an engine-internal
            # time limit shorter than the budget fails this elapsed check
            return "deadline"
        return None

    def _complete_counterexample(self, witness: Counterexample) -> Counterexample:
        """Fill in variables the slice dropped (any in-domain value works)."""
        initial_state = dict(witness.initial_state)
        for name, variable in self._translation.system.variables.items():
            if name not in initial_state:
                initial_state[name] = (
                    variable.initial
                    if variable.initial is not None
                    else variable.domain.lo
                )
        inputs = {
            name: initial_state[name]
            for name, variable in self._translation.system.variables.items()
            if variable.is_input
        }
        return Counterexample(
            inputs=inputs, initial_state=initial_state, trace=witness.trace
        )

    def _empty_statistics(self) -> CheckStatistics:
        system = self._translation.system
        return CheckStatistics(
            state_bits=system.total_state_bits(),
            transitions_in_model=len(system.transitions),
            sliced_state_bits=system.total_state_bits(),
            sliced_transitions=len(system.transitions),
        )
