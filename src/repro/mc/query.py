"""Planned, budgeted, sliced reachability queries -- the unified query engine.

Every model-checking question the WCET tool chain asks ("reach this block",
"follow this edge sequence") goes through one subsystem:

* a :class:`QueryPlan` batches all goals of one function and inserts
  *feasibility probes* for path prefixes shared by several edge-sequence
  goals -- an infeasible shared prefix proves every extension infeasible
  with a single query;
* a :class:`QueryEngine` runs each goal through a budgeted engine
  portfolio: explicit enumeration when the (sliced) initial state space is
  small, then symbolic search on the goal's cone-of-influence slice
  (:mod:`repro.mc.slicing`), escalating to the full model only when the
  slice could not answer;
* a :class:`QueryBudget` bounds every query with step / solver-call /
  deadline limits; when the budget runs out the result carries the typed
  :class:`~repro.mc.result.BudgetExhausted` verdict, which the WCET layer
  treats as "unreached, pessimise" instead of hanging on an unbounded
  search;
* witnesses are memoised per ``(slice fingerprint, goal)`` and replayed
  against later goals of the batch (a witness that reaches block 40 through
  block 17 also answers the block-17 query), and proven-infeasible label
  sequences subsume every extension.

Progress is surfaced through :mod:`repro.perf`: counters ``mc.query.*``
(planned / sliced / cache_hits / escalations / budget_exhausted /
prefix_hits / witness_reuse) and timers ``mc.plan`` / ``mc.slice`` /
``mc.solve``.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from dataclasses import dataclass, replace

from .. import obs, perf
from ..resilience import InjectedFault, maybe_fault, poll_deadline
from ..transsys.translate import TranslationResult
from .explicit import ExplicitEngineOptions, ExplicitStateEngine, StateSpaceTooLarge
from .property import ReachabilityGoal
from .result import (
    BudgetExhausted,
    CheckResult,
    CheckStatistics,
    Counterexample,
    Verdict,
)
from .slicing import GoalSlice, forward_reachable_locations, slice_for_goal
from .symbolic import SymbolicEngine, SymbolicEngineOptions


class EngineKind(enum.Enum):
    SYMBOLIC = "symbolic"
    EXPLICIT = "explicit"
    AUTO = "auto"


@dataclass(frozen=True)
class QueryBudget:
    """Hard limits of one reachability query, across all portfolio stages.

    ``None`` disables the respective limit.  The defaults match the
    symbolic engine's historical own bounds, so an un-tuned budget changes
    nothing except that exhaustion becomes an explicit, typed verdict.
    """

    #: total explored states/paths across all engine stages
    max_steps: int | None = 200_000
    #: total constraint-solver invocations across all engine stages
    max_solver_calls: int | None = None
    #: wall-clock deadline for the whole query in milliseconds
    deadline_ms: int | None = 120_000

    @classmethod
    def unlimited(cls) -> "QueryBudget":
        return cls(max_steps=None, max_solver_calls=None, deadline_ms=None)

    @property
    def deadline_seconds(self) -> float | None:
        return self.deadline_ms / 1000.0 if self.deadline_ms is not None else None


@dataclass(frozen=True)
class PlannedQuery:
    """One goal of a query plan.

    ``key`` is the caller's handle (the test-data generator uses the path
    target's key); probes carry synthetic keys and are executed only for
    their side effects on the shared infeasible-prefix/witness bookkeeping.
    """

    key: object
    goal: ReachabilityGoal
    is_probe: bool = False


#: a prefix probe is worth a query when at least this many goals share it
PREFIX_PROBE_THRESHOLD = 3


class QueryPlan:
    """All reachability goals of one function, ordered for shared work.

    Edge-sequence goals are clustered lexicographically by their label
    sequences so goals sharing prefixes run back to back (maximising
    witness reuse and prefix subsumption), and prefixes shared by at least
    :data:`PREFIX_PROBE_THRESHOLD` goals get a feasibility probe that runs
    first: one UNREACHABLE probe answers every goal extending it.
    """

    def __init__(self, items: list[PlannedQuery]):
        self.items = items

    @property
    def goal_count(self) -> int:
        return sum(1 for item in self.items if not item.is_probe)

    @property
    def probe_count(self) -> int:
        return sum(1 for item in self.items if item.is_probe)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        goals: list[tuple[object, ReachabilityGoal]],
        probe_threshold: int = PREFIX_PROBE_THRESHOLD,
    ) -> "QueryPlan":
        with obs.span("mc.plan", goals=len(goals)), perf.timed("mc.plan"):
            ordered_goals = sorted(
                goals,
                key=lambda item: (item[1].ordered_labels, item[1].description),
            )
            sequences = [
                goal.ordered_labels
                for _, goal in ordered_goals
                if goal.ordered_labels
                and not goal.target_locations
                and not goal.target_labels
            ]
            probes = [
                PlannedQuery(
                    key=("probe", prefix),
                    goal=ReachabilityGoal(
                        ordered_labels=prefix,
                        description="prefix probe " + " -> ".join(prefix),
                    ),
                    is_probe=True,
                )
                for prefix in cls._shared_prefixes(sequences, probe_threshold)
            ]
            items = probes + [
                PlannedQuery(key=key, goal=goal) for key, goal in ordered_goals
            ]
        return cls(items)

    @staticmethod
    def _shared_prefixes(
        sequences: list[tuple[str, ...]], threshold: int
    ) -> list[tuple[str, ...]]:
        """Deepest branching prefixes shared by >= *threshold* sequences."""
        counts: dict[tuple[str, ...], int] = {}
        continuations: dict[tuple[str, ...], set[str]] = {}
        for sequence in sequences:
            for cut in range(1, len(sequence)):
                prefix = sequence[:cut]
                counts[prefix] = counts.get(prefix, 0) + 1
                continuations.setdefault(prefix, set()).add(sequence[cut])
        candidates = {
            prefix
            for prefix, count in counts.items()
            if count >= threshold and len(continuations[prefix]) >= 2
        }
        deepest = [
            prefix
            for prefix in candidates
            if not any(
                other != prefix and other[: len(prefix)] == prefix
                for other in candidates
            )
        ]
        return sorted(deepest)


@dataclass
class QueryEngineOptions:
    """Configuration of the query engine (budget + portfolio + slicing)."""

    engine: EngineKind = EngineKind.AUTO
    #: None = no external budget (the engines' own defaults still apply)
    budget: QueryBudget | None = None
    slicing: bool = True
    symbolic: SymbolicEngineOptions | None = None
    explicit: ExplicitEngineOptions | None = None
    #: explicit enumeration is attempted when the free state space of the
    #: (sliced) model has at most this many bits
    explicit_bits_threshold: int = 16


@dataclass
class QueryEngineStats:
    """In-process counters of one query engine (mirrored into repro.perf)."""

    planned: int = 0
    sliced: int = 0
    cache_hits: int = 0
    escalations: int = 0
    budget_exhausted: int = 0
    prefix_hits: int = 0
    witness_reuse: int = 0
    #: queries degraded to ENGINE_FAULT because every stage's solver died
    #: on an injected fault
    engine_faults: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)


class QueryEngine:
    """Budgeted, sliced reachability checking against one translated function."""

    def __init__(
        self,
        translation: TranslationResult,
        options: QueryEngineOptions | None = None,
    ):
        self._translation = translation
        self._options = options or QueryEngineOptions()
        self.stats = QueryEngineStats()
        #: forward-reachable locations of the full model (goal-independent)
        self._forward: frozenset[int] | None = None
        #: goal-seed -> GoalSlice (many goals share one slice)
        self._slices: dict[object, GoalSlice | None] = {}
        #: (slice fingerprint, goal) -> memoised result
        self._memo: dict[tuple[str, ReachabilityGoal], CheckResult] = {}
        #: label sequences proven infeasible (subsume every extension)
        self._infeasible_prefixes: list[tuple[str, ...]] = []
        #: completed witnesses, replayed against later goals of a batch
        self._witnesses: list[Counterexample] = []

    # ------------------------------------------------------------------ #
    @property
    def translation(self) -> TranslationResult:
        return self._translation

    def run_plan(self, plan: QueryPlan) -> dict[object, CheckResult]:
        """Execute every goal of *plan*; probes feed the shared bookkeeping."""
        results: dict[object, CheckResult] = {}
        for item in plan.items:
            result = self.check(item.goal)
            if not item.is_probe:
                results[item.key] = result
        return results

    def check(self, goal: ReachabilityGoal) -> CheckResult:
        """Answer one reachability goal within the configured budget."""
        self.stats.planned += 1
        perf.add("mc.query.planned")

        # 1. a proven-infeasible prefix subsumes every extension
        if (
            goal.ordered_labels
            and not goal.target_locations
            and not goal.target_labels
        ):
            for prefix in self._infeasible_prefixes:
                if goal.ordered_labels[: len(prefix)] == prefix:
                    self.stats.prefix_hits += 1
                    perf.add("mc.query.prefix_hits")
                    return CheckResult(
                        verdict=Verdict.UNREACHABLE,
                        statistics=self._empty_statistics(),
                        goal_description=goal.description,
                    )

        # 2. per-(slice, goal) memo
        goal_slice = self._slice_for(goal)
        fingerprint = goal_slice.fingerprint if goal_slice is not None else "full"
        memo_key = (fingerprint, goal)
        cached = self._memo.get(memo_key)
        if cached is not None:
            self.stats.cache_hits += 1
            perf.add("mc.query.cache_hits")
            # a fresh result shell charging (near) zero time: the hit did not
            # re-run the search, and handing out the memoised statistics
            # object would double-bill the original query's cost per sibling
            return replace(
                cached, statistics=replace(cached.statistics, time_seconds=0.0)
            )

        # 3. an earlier witness may already answer this goal
        reused = self._covered_by_known_witness(goal)
        if reused is not None:
            self.stats.witness_reuse += 1
            perf.add("mc.query.witness_reuse")
            self._memo[memo_key] = reused
            return reused

        # 4. the budgeted engine portfolio
        result = self._run_portfolio(goal, goal_slice)

        # 5. bookkeeping for the rest of the batch
        if (
            result.verdict is Verdict.UNREACHABLE
            and goal.ordered_labels
            and not goal.target_locations
            and not goal.target_labels
        ):
            self._infeasible_prefixes.append(tuple(goal.ordered_labels))
        if result.verdict is Verdict.REACHABLE and result.counterexample is not None:
            if result.counterexample.trace:
                self._witnesses.append(result.counterexample)
        if result.verdict is not Verdict.ENGINE_FAULT:
            # a faulted query is a property of this run's fault plan, not of
            # the goal: memoising it would let one injected crash answer
            # later sibling goals with a degraded verdict
            self._memo[memo_key] = result
        return result

    # ------------------------------------------------------------------ #
    # slicing
    # ------------------------------------------------------------------ #
    def _slice_for(self, goal: ReachabilityGoal) -> GoalSlice | None:
        if not self._options.slicing:
            return None
        seed = (
            goal.target_locations,
            goal.target_labels,
            goal.ordered_labels[-1] if goal.ordered_labels else None,
        )
        if seed in self._slices:
            return self._slices[seed]
        if self._forward is None:
            self._forward = forward_reachable_locations(self._translation.system)
        with perf.timed("mc.slice"):
            goal_slice = slice_for_goal(self._translation, goal, self._forward)
        if goal_slice.is_proper:
            self.stats.sliced += 1
            perf.add("mc.query.sliced")
        self._slices[seed] = goal_slice
        return goal_slice

    # ------------------------------------------------------------------ #
    # witness reuse
    # ------------------------------------------------------------------ #
    def _covered_by_known_witness(self, goal: ReachabilityGoal) -> CheckResult | None:
        for witness in self._witnesses:
            progress = 0
            for index, transition in enumerate(witness.trace):
                progress = goal.progress_after(transition, progress)
                if goal.satisfied(transition.target, transition, progress):
                    counterexample = Counterexample(
                        inputs=dict(witness.inputs),
                        initial_state=dict(witness.initial_state),
                        trace=list(witness.trace[: index + 1]),
                    )
                    stats = self._empty_statistics()
                    stats.steps = counterexample.steps
                    return CheckResult(
                        verdict=Verdict.REACHABLE,
                        counterexample=counterexample,
                        statistics=stats,
                        goal_description=goal.description,
                    )
        return None

    # ------------------------------------------------------------------ #
    # the portfolio
    # ------------------------------------------------------------------ #
    def _stages(
        self, goal_slice: GoalSlice | None
    ) -> list[tuple[str, TranslationResult]]:
        """(label, model) stages in escalation order for this goal."""
        sliced = (
            goal_slice.translation
            if goal_slice is not None and goal_slice.is_proper
            else None
        )
        base = sliced if sliced is not None else self._translation
        kind = self._options.engine
        stages: list[tuple[str, TranslationResult]] = []
        if kind is EngineKind.EXPLICIT:
            return [("explicit", base)]
        if kind is EngineKind.AUTO:
            bits = base.system.initial_state_bits()
            if bits <= self._options.explicit_bits_threshold:
                stages.append(("explicit", base))
        label = "symbolic:sliced" if sliced is not None else "symbolic:full"
        stages.append((label, base))
        if sliced is not None:
            stages.append(("symbolic:full", self._translation))
        return stages

    def _run_portfolio(
        self, goal: ReachabilityGoal, goal_slice: GoalSlice | None
    ) -> CheckResult:
        budget = self._options.budget
        started = time.perf_counter()
        deadline = (
            started + budget.deadline_seconds
            if budget is not None and budget.deadline_seconds is not None
            else None
        )
        spent_steps = 0
        spent_solver_calls = 0
        stages = self._stages(goal_slice)
        engines_tried: list[str] = []
        last: CheckResult | None = None
        tripped_before_stage: str | None = None

        solver_faults: list[InjectedFault] = []
        for index, (label, model) in enumerate(stages):
            # the per-job wall-clock deadline (scheduler resilience) is
            # polled between stages -- solver stages are the long-running
            # part of a job besides interpreter runs
            poll_deadline()
            tripped_before_stage = self._budget_spent(
                budget, deadline, spent_steps, spent_solver_calls
            )
            if tripped_before_stage is not None:
                break
            engine = self._build_engine(
                label, model, budget, deadline, spent_steps, spent_solver_calls
            )
            try:
                with obs.span("mc.solve", engine=label), perf.timed("mc.solve"):
                    maybe_fault("mc.solve", goal.description)
                    result = engine.check(goal)
            except StateSpaceTooLarge:
                if self._options.engine is EngineKind.EXPLICIT:
                    raise  # a forced engine does not fall through
                continue
            except InjectedFault as fault:
                # a (simulated) solver crash fails this stage only; later
                # stages may still answer, and an unanswered goal degrades
                # to the typed ENGINE_FAULT verdict instead of raising
                solver_faults.append(fault)
                continue
            engines_tried.append(label)
            spent_steps += result.statistics.explored_states
            spent_solver_calls += result.statistics.solver.solve_calls
            last = result
            if result.verdict in (Verdict.REACHABLE, Verdict.UNREACHABLE):
                break
            if index + 1 < len(stages):
                self.stats.escalations += 1
                perf.add("mc.query.escalations")

        if last is None and solver_faults:
            # every stage that ran died on an injected solver fault: degrade
            # to a typed verdict ("unreached, pessimise"), never raise
            self.stats.engine_faults += 1
            perf.add("mc.query.engine_faults")
            stats = self._empty_statistics()
            stats.engines_tried = tuple(engines_tried)
            stats.stop_reason = "engine-fault"
            stats.time_seconds = time.perf_counter() - started
            return CheckResult(
                verdict=Verdict.ENGINE_FAULT,
                statistics=stats,
                goal_description=goal.description,
            )
        return self._finalize(
            goal, goal_slice, last, engines_tried, budget,
            spent_steps, spent_solver_calls, time.perf_counter() - started,
            tripped_before_stage,
        )

    @staticmethod
    def _budget_spent(
        budget: QueryBudget | None,
        deadline: float | None,
        spent_steps: int,
        spent_solver_calls: int,
    ) -> str | None:
        """The budget limit already used up before a stage, if any."""
        if budget is None:
            return None
        if budget.max_steps is not None and spent_steps >= budget.max_steps:
            return "steps"
        if (
            budget.max_solver_calls is not None
            and spent_solver_calls >= budget.max_solver_calls
        ):
            return "solver_calls"
        if deadline is not None and time.perf_counter() >= deadline:
            return "deadline"
        return None

    def _build_engine(
        self,
        label: str,
        model: TranslationResult,
        budget: QueryBudget | None,
        deadline: float | None,
        spent_steps: int,
        spent_solver_calls: int,
    ):
        remaining_time = (
            max(0.0, deadline - time.perf_counter()) if deadline is not None else None
        )
        if label == "explicit":
            options = self._options.explicit or ExplicitEngineOptions()
            if budget is not None and budget.max_steps is not None:
                options = replace(
                    options,
                    max_explored_states=min(
                        options.max_explored_states, budget.max_steps - spent_steps
                    ),
                )
            if remaining_time is not None:
                limit = options.time_limit
                options = replace(
                    options,
                    time_limit=remaining_time
                    if limit is None
                    else min(limit, remaining_time),
                )
            return ExplicitStateEngine(model.system, options)
        options = self._options.symbolic or SymbolicEngineOptions()
        if budget is not None and budget.max_steps is not None:
            options = replace(
                options,
                max_paths=min(options.max_paths, budget.max_steps - spent_steps),
            )
        if budget is not None and budget.max_solver_calls is not None:
            remaining_calls = budget.max_solver_calls - spent_solver_calls
            limit = options.max_solver_calls
            options = replace(
                options,
                max_solver_calls=remaining_calls
                if limit is None
                else min(limit, remaining_calls),
            )
        if remaining_time is not None:
            limit = options.time_limit
            options = replace(
                options,
                time_limit=remaining_time
                if limit is None
                else min(limit, remaining_time),
            )
        return SymbolicEngine(model.system, options)

    # ------------------------------------------------------------------ #
    def _finalize(
        self,
        goal: ReachabilityGoal,
        goal_slice: GoalSlice | None,
        last: CheckResult | None,
        engines_tried: list[str],
        budget: QueryBudget | None,
        spent_steps: int,
        spent_solver_calls: int,
        elapsed: float,
        tripped_before_stage: str | None,
    ) -> CheckResult:
        if last is None:
            last = CheckResult(
                verdict=Verdict.UNKNOWN,
                statistics=self._empty_statistics(),
                goal_description=goal.description,
            )
        stats = last.statistics
        # statistics always describe the caller's full model; the sliced
        # fields record what the search actually ran on
        original = self._translation.system
        stats.state_bits = original.total_state_bits()
        stats.transitions_in_model = len(original.transitions)
        stats.engines_tried = tuple(engines_tried)
        stats.time_seconds = elapsed
        stats.explored_states = spent_steps
        if (
            last.verdict is Verdict.REACHABLE
            and last.counterexample is not None
            and goal_slice is not None
            and goal_slice.dropped_variables
        ):
            last.counterexample = self._complete_counterexample(last.counterexample)

        if last.verdict is Verdict.UNKNOWN and budget is not None:
            limit = tripped_before_stage or self._tripped_limit(
                budget, spent_steps, spent_solver_calls, elapsed, stats.stop_reason
            )
            if limit is not None:
                self.stats.budget_exhausted += 1
                perf.add("mc.query.budget_exhausted")
                return CheckResult(
                    verdict=Verdict.BUDGET_EXHAUSTED,
                    statistics=stats,
                    goal_description=goal.description,
                    exhaustion=BudgetExhausted(
                        limit=limit,
                        spent_steps=spent_steps,
                        spent_solver_calls=spent_solver_calls,
                        spent_seconds=elapsed,
                    ),
                )
        return last

    @staticmethod
    def _tripped_limit(
        budget: QueryBudget,
        spent_steps: int,
        spent_solver_calls: int,
        elapsed: float,
        stop_reason: str | None,
    ) -> str | None:
        """Which budget limit actually stopped the search, if any.

        The engine's ``stop_reason`` disambiguates: an UNKNOWN caused by the
        engine's own internal bounds (depth, loop-unrolling) near a budget
        boundary must stay a plain UNKNOWN, not be misattributed to the
        budget.
        """
        if (
            stop_reason in ("paths", "states")
            and budget.max_steps is not None
            and spent_steps >= budget.max_steps
        ):
            return "steps"
        if (
            stop_reason == "solver_calls"
            and budget.max_solver_calls is not None
            and spent_solver_calls >= budget.max_solver_calls
        ):
            return "solver_calls"
        deadline = budget.deadline_seconds
        if (
            stop_reason == "deadline"
            and deadline is not None
            and elapsed >= deadline * 0.98
        ):
            # the 2% slack covers the engine stopping just short of the
            # absolute deadline between two poll points; an engine-internal
            # time limit shorter than the budget fails this elapsed check
            return "deadline"
        return None

    def _complete_counterexample(self, witness: Counterexample) -> Counterexample:
        """Fill in variables the slice dropped (any in-domain value works)."""
        initial_state = dict(witness.initial_state)
        for name, variable in self._translation.system.variables.items():
            if name not in initial_state:
                initial_state[name] = (
                    variable.initial
                    if variable.initial is not None
                    else variable.domain.lo
                )
        inputs = {
            name: initial_state[name]
            for name, variable in self._translation.system.variables.items()
            if variable.is_input
        }
        return Counterexample(
            inputs=inputs, initial_state=initial_state, trace=witness.trace
        )

    def _empty_statistics(self) -> CheckStatistics:
        system = self._translation.system
        return CheckStatistics(
            state_bits=system.total_state_bits(),
            transitions_in_model=len(system.transitions),
            sliced_state_bits=system.total_state_bits(),
            sliced_transitions=len(system.transitions),
        )
