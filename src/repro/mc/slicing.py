"""Per-goal relevance slicing of translated transition systems.

Classic cone-of-influence reduction, applied *per reachability goal*: a
query "reach block 613" does not need the five operating modes that cannot
lead to block 613, nor the variables that only feed branches inside them.
The slice is computed on the translated :class:`TransitionSystem` (where the
control structure and every guard are explicit) in two steps:

1. **control slice** -- keep only transitions that lie on some path from the
   initial location to a goal *anchor* (a transition carrying a goal label,
   or a goal location): forward reachability from the initial location
   intersected with backward reachability from the anchors.  Every witness
   path visits only such transitions, and the slice cannot invent new paths,
   so REACHABLE/UNREACHABLE verdicts are exactly preserved.
2. **data cone** -- keep only variables read by the guards of the kept
   transitions, closed under data dependencies through their updates
   (the transition-level analogue of
   :func:`repro.analysis.relevance.control_relevant_variables` over
   :mod:`repro.analysis.usedef`).  Updates to dropped variables become skip
   updates; guards are untouched, so guard evaluation -- and hence the set
   of feasible paths -- is unchanged.

The result typically turns the 857-block industrial function's deep queries
from a search over the whole mode ladder into a search over one mode's
cone, which is what makes the big application checkable at all.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..minic.folding import expression_variables
from ..minic.pretty import print_expression
from ..transsys.translate import TranslationResult
from .property import ReachabilityGoal


def system_fingerprint(system) -> str:
    """Content hash of a transition system, stable across runs and names.

    Hashes exactly what the engines see -- initial location, variable
    domains/kinds/initial values, and every transition's printed guard,
    updates and labels -- and deliberately *excludes* ``system.name``: two
    functions whose sliced cones are structurally identical share one
    fingerprint, so persisted verdicts transfer across functions and runs.
    """
    digest = hashlib.sha256()
    digest.update(repr(system.initial_location).encode("utf-8"))
    for name in sorted(system.variables):
        variable = system.variables[name]
        digest.update(
            repr(
                (
                    name,
                    variable.domain.lo,
                    variable.domain.hi,
                    variable.is_input,
                    variable.initial,
                )
            ).encode("utf-8")
        )
    for transition in system.transitions:
        digest.update(
            repr(
                (
                    transition.source,
                    transition.target,
                    print_expression(transition.guard)
                    if transition.guard is not None
                    else None,
                    tuple(
                        (name, print_expression(expr))
                        for name, expr in transition.updates
                    ),
                    tuple(transition.labels),
                )
            ).encode("utf-8")
        )
    return digest.hexdigest()[:16]


@dataclass
class GoalSlice:
    """A goal-specific slice of a translated function."""

    #: sliced translation (shares the base result's CFG provenance maps)
    translation: TranslationResult
    #: stable identity of the slice -- memo key component for witness reuse
    fingerprint: str
    kept_variables: frozenset[str]
    dropped_variables: frozenset[str]
    kept_transition_count: int
    original_transition_count: int

    @property
    def is_proper(self) -> bool:
        """True when the slice actually removed something."""
        return (
            bool(self.dropped_variables)
            or self.kept_transition_count < self.original_transition_count
        )


def parse_label(label: str) -> tuple | None:
    """Structured view of a transition label, or None for foreign formats.

    The translator emits exactly two label shapes (see
    :mod:`repro.transsys.translate`): ``block:<id>`` becomes
    ``("block", id)`` and ``edge:<source>-><target>:<kind>`` becomes
    ``("edge", source, target, kind)`` with *kind* the
    :class:`~repro.cfg.graph.EdgeKind` value string.  Consumers that prove
    facts from labels (the static prefilter) must treat ``None`` as
    "unknown — assume nothing".
    """
    if label.startswith("block:"):
        try:
            return ("block", int(label[len("block:"):]))
        except ValueError:
            return None
    if label.startswith("edge:"):
        body = label[len("edge:"):]
        head, sep, kind = body.rpartition(":")
        if not sep or not kind:
            return None
        source_text, arrow, target_text = head.partition("->")
        if not arrow:
            return None
        try:
            return ("edge", int(source_text), int(target_text), kind)
        except ValueError:
            return None
    return None


def forward_reachable_locations(system) -> frozenset[int]:
    """Locations reachable from the initial location (goal-independent)."""
    successors: dict[int, list[int]] = {}
    for transition in system.transitions:
        successors.setdefault(transition.source, []).append(transition.target)
    seen = {system.initial_location}
    worklist = [system.initial_location]
    while worklist:
        location = worklist.pop()
        for target in successors.get(location, ()):
            if target not in seen:
                seen.add(target)
                worklist.append(target)
    return frozenset(seen)


def _goal_anchor_labels(goal: ReachabilityGoal) -> frozenset[str]:
    """Labels whose traversal can complete the goal.

    For an ordered-label goal only the *last* label finishes the sequence;
    every earlier label lies on the path to it and is kept by the backward
    closure automatically.
    """
    labels = set(goal.target_labels)
    if goal.ordered_labels:
        labels.add(goal.ordered_labels[-1])
    return frozenset(labels)


def slice_for_goal(
    translation: TranslationResult,
    goal: ReachabilityGoal,
    forward: frozenset[int] | None = None,
) -> GoalSlice:
    """Compute the cone-of-influence slice of *translation* for *goal*.

    ``forward`` may pass a precomputed :func:`forward_reachable_locations`
    set (it does not depend on the goal, so callers running query batches
    compute it once).
    """
    system = translation.system
    transitions = system.transitions
    if forward is None:
        forward = forward_reachable_locations(system)

    # --- anchors: where the goal can be completed -------------------------- #
    anchor_labels = _goal_anchor_labels(goal)
    anchor_indices: set[int] = set()
    seeds: set[int] = set(goal.target_locations)
    for index, transition in enumerate(transitions):
        if anchor_labels and anchor_labels.intersection(transition.labels):
            anchor_indices.add(index)
            seeds.add(transition.source)

    # --- backward reachability to a seed over the location graph ---------- #
    predecessors: dict[int, list[int]] = {}
    for transition in transitions:
        predecessors.setdefault(transition.target, []).append(transition.source)
    can_reach = set(seeds)
    worklist = list(seeds)
    while worklist:
        location = worklist.pop()
        for source in predecessors.get(location, ()):
            if source not in can_reach:
                can_reach.add(source)
                worklist.append(source)

    # --- control slice ----------------------------------------------------- #
    kept_indices = [
        index
        for index, transition in enumerate(transitions)
        if transition.source in can_reach
        and transition.source in forward
        and (index in anchor_indices or transition.target in can_reach)
    ]
    kept_transitions = [transitions[index] for index in kept_indices]

    # --- data cone: guard variables closed under update dependencies ------ #
    relevant: set[str] = set()
    dependencies: dict[str, set[str]] = {}
    for transition in kept_transitions:
        if transition.guard is not None:
            relevant |= expression_variables(transition.guard)
        for name, expr in transition.updates:
            dependencies.setdefault(name, set()).update(expression_variables(expr))
    worklist = list(relevant)
    while worklist:
        name = worklist.pop()
        for source in dependencies.get(name, ()):
            if source not in relevant:
                relevant.add(source)
                worklist.append(source)

    kept_variables = frozenset(name for name in system.variables if name in relevant)
    dropped_variables = frozenset(system.variables) - kept_variables

    sliced = translation.sliced(kept_variables, kept_transitions)
    return GoalSlice(
        translation=sliced,
        # a *content* hash of the sliced system (not of the kept index set):
        # stable across processes and across functions whose cones coincide,
        # which is what lets the persistent query store survive edits
        # outside the cone
        fingerprint=system_fingerprint(sliced.system),
        kept_variables=kept_variables,
        dropped_variables=dropped_variables,
        kept_transition_count=len(kept_transitions),
        original_transition_count=len(transitions),
    )
