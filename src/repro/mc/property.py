"""Reachability properties.

Test-data generation asks the model checker a single kind of question: *"is
there an execution that reaches this program point / takes this sequence of
branches?"*  The paper encodes it as a SAL assertion whose counterexample is
the test vector; here it is a :class:`ReachabilityGoal`.

A goal can name target locations (reach any of them), target labels (traverse
a transition carrying any of them -- labels encode CFG blocks and edges, see
:mod:`repro.transsys.translate`) and an ordered label *sequence* for
path-precise goals ("take the true edge of block 4, then the false edge of
block 6"), which is what forcing a specific path through a program segment
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..transsys.system import Transition


@dataclass(frozen=True)
class ReachabilityGoal:
    """A reachability query against a transition system."""

    target_locations: frozenset[int] = frozenset()
    target_labels: frozenset[str] = frozenset()
    #: labels that must be traversed in this order (other transitions may be
    #: interleaved); empty means "no ordering requirement"
    ordered_labels: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.target_locations and not self.target_labels and not self.ordered_labels:
            raise ValueError("a reachability goal needs at least one target")

    # ------------------------------------------------------------------ #
    def is_trivially_reached_at(self, location: int) -> bool:
        """True when simply being at *location* already satisfies the goal."""
        return (
            location in self.target_locations
            and not self.ordered_labels
            and not self.target_labels
        )

    def progress_after(self, transition: Transition, progress: int) -> int:
        """Advance the ordered-label progress counter over *transition*.

        A single transition may carry several of the ordered labels (statement
        concatenation fuses straight-line transitions and concatenates their
        labels), so the counter advances over every consecutive expected label
        the transition provides.
        """
        while progress < len(self.ordered_labels) and (
            self.ordered_labels[progress] in transition.labels
        ):
            progress += 1
        return progress

    def satisfied(
        self, location: int, transition: Transition | None, progress: int
    ) -> bool:
        """Check the goal after taking *transition* into *location*."""
        if self.ordered_labels:
            if progress < len(self.ordered_labels):
                return False
            # ordered labels complete; fall through to the other conditions,
            # which are optional extras
            if not self.target_locations and not self.target_labels:
                return True
        if self.target_locations and location in self.target_locations:
            return True
        if (
            self.target_labels
            and transition is not None
            and self.target_labels.intersection(transition.labels)
        ):
            return True
        return False


@dataclass
class GoalBuilder:
    """Convenience constructors for the goals the WCET tooling needs."""

    block_location: dict[int, int] = field(default_factory=dict)

    def reach_block(self, block_id: int) -> ReachabilityGoal:
        """Reach the entry of a CFG basic block."""
        from ..transsys.translate import block_label

        goal_labels = frozenset({block_label(block_id)})
        locations = frozenset(
            {self.block_location[block_id]} if block_id in self.block_location else set()
        )
        return ReachabilityGoal(
            target_locations=locations,
            target_labels=goal_labels,
            description=f"reach block {block_id}",
        )

    def follow_edges(self, edge_labels: list[str]) -> ReachabilityGoal:
        """Traverse the given CFG edges in order (a path goal)."""
        return ReachabilityGoal(
            ordered_labels=tuple(edge_labels),
            description="follow edges " + " -> ".join(edge_labels),
        )
