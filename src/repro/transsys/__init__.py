"""Transition-system IR and the C-to-transition-system ("C to SAL") translator."""

from __future__ import annotations

from .system import StateVariable, Transition, TransitionSystem
from .translate import (
    CToTransitionSystem,
    TranslationError,
    TranslationOptions,
    TranslationResult,
    block_label,
    edge_label,
    translate_function,
)

__all__ = [
    "StateVariable",
    "Transition",
    "TransitionSystem",
    "CToTransitionSystem",
    "TranslationError",
    "TranslationOptions",
    "TranslationResult",
    "block_label",
    "edge_label",
    "translate_function",
]
