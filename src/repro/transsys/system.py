"""Guarded-transition-system IR -- the stand-in for the SAL input language.

The paper translates C functions into the SAL language so that the SAL model
checker can search for test data (Section 3).  This reproduction translates
into the :class:`TransitionSystem` defined here: a finite set of *locations*
(the program counter), a set of finite-domain *state variables*, and guarded
*transitions* ``pc = L ∧ guard → updates; pc := L'``.

What matters for reproducing the paper's optimisation study is that the IR
exposes the same cost drivers SAL has:

* the **state-vector width** -- the sum of the bit widths of all variables
  (plus the pc); the paper quotes ~700 bits as the practical limit and notes
  that naïve translation wastes 16 bits on every boolean;
* the **number of transitions** a run needs to reach a target -- statement
  concatenation packs several C statements into one transition and shrinks it.

Guards and update right-hand sides reuse the mini-C expression AST
(:mod:`repro.minic.ast_nodes`), evaluated over integers by the engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..minic.ast_nodes import Expr
from ..minic.pretty import print_expression
from ..minic.types import CType, INT16, IntRange


@dataclass
class StateVariable:
    """One finite-domain state variable of the model.

    ``initial`` is ``None`` for variables whose initial value the model
    checker may choose freely (the paper's uninitialised variables and the
    analysis inputs); otherwise the variable starts at the given value.
    """

    name: str
    domain: IntRange
    ctype: CType = INT16
    is_input: bool = False
    initial: int | None = None

    @property
    def bits(self) -> int:
        return self.domain.bits()

    @property
    def is_free(self) -> bool:
        """True when the initial value is unconstrained (part of D_I)."""
        return self.initial is None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        init = "?" if self.initial is None else str(self.initial)
        return f"{self.name}:[{self.domain.lo},{self.domain.hi}]={init}"


@dataclass
class Transition:
    """A guarded transition between two locations.

    ``updates`` are *simultaneous* assignments (SAL semantics); the translator
    only groups statements whose updates are independent, so simultaneous and
    sequential interpretation coincide.  ``labels`` carry the CFG provenance
    (``"block:<id>"``, ``"edge:<src>-><dst>"``) that reachability properties
    refer to.
    """

    source: int
    target: int
    guard: Expr | None = None
    updates: list[tuple[str, Expr]] = field(default_factory=list)
    labels: tuple[str, ...] = ()
    #: number of original C statements folded into this transition
    statement_count: int = 1

    def describe(self) -> str:
        guard = print_expression(self.guard) if self.guard is not None else "true"
        updates = ", ".join(f"{name}' = {print_expression(expr)}" for name, expr in self.updates)
        return f"L{self.source} --[{guard}]--> L{self.target} {{{updates}}}"


@dataclass
class TransitionSystem:
    """A complete model: variables, locations, transitions."""

    name: str
    variables: dict[str, StateVariable] = field(default_factory=dict)
    transitions: list[Transition] = field(default_factory=list)
    initial_location: int = 0
    final_locations: set[int] = field(default_factory=set)
    #: free-form notes (which optimisations were applied, ...)
    annotations: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def locations(self) -> list[int]:
        found: set[int] = {self.initial_location} | set(self.final_locations)
        for transition in self.transitions:
            found.add(transition.source)
            found.add(transition.target)
        return sorted(found)

    def outgoing(self, location: int) -> list[Transition]:
        return [t for t in self.transitions if t.source == location]

    def variable(self, name: str) -> StateVariable:
        try:
            return self.variables[name]
        except KeyError as exc:
            raise KeyError(f"transition system has no variable {name!r}") from exc

    def input_variables(self) -> list[StateVariable]:
        return [v for v in self.variables.values() if v.is_input]

    def free_variables(self) -> list[StateVariable]:
        """Variables whose initial value the model checker chooses (D_I)."""
        return [v for v in self.variables.values() if v.is_free]

    # ------------------------------------------------------------------ #
    # the metrics of the paper's Section 3.1 / Table 2
    # ------------------------------------------------------------------ #
    def state_bits(self) -> int:
        """Bits of the data state vector (excluding the program counter)."""
        return sum(variable.bits for variable in self.variables.values())

    def pc_bits(self) -> int:
        count = len(self.locations())
        return max(1, (max(1, count - 1)).bit_length())

    def total_state_bits(self) -> int:
        """Bits of the full state vector (data + program counter)."""
        return self.state_bits() + self.pc_bits()

    def state_space_size_log2(self) -> float:
        """log2 |D| -- the size of the (unreachable-included) state space."""
        return float(self.total_state_bits())

    def initial_state_bits(self) -> int:
        """Bits of freedom in the initial state (log2 |D_I|)."""
        return sum(variable.bits for variable in self.free_variables())

    def transition_count(self) -> int:
        return len(self.transitions)

    def summary(self) -> dict[str, int]:
        return {
            "variables": len(self.variables),
            "free_variables": len(self.free_variables()),
            "locations": len(self.locations()),
            "transitions": len(self.transitions),
            "state_bits": self.state_bits(),
            "total_state_bits": self.total_state_bits(),
            "initial_state_bits": self.initial_state_bits(),
        }

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """A SAL-flavoured textual rendering of the model (for reports)."""
        lines = [f"MODULE {self.name}"]
        lines.append("  VARIABLES")
        for variable in self.variables.values():
            marker = " (input)" if variable.is_input else ""
            init = "nondet" if variable.initial is None else str(variable.initial)
            lines.append(
                f"    {variable.name}: [{variable.domain.lo}..{variable.domain.hi}]"
                f" init {init}{marker}  /* {variable.bits} bits */"
            )
        lines.append(f"  INITIAL LOCATION L{self.initial_location}")
        lines.append("  TRANSITIONS")
        for transition in self.transitions:
            lines.append(f"    {transition.describe()}")
        lines.append(
            f"  /* state vector: {self.total_state_bits()} bits "
            f"({self.state_bits()} data + {self.pc_bits()} pc) */"
        )
        return "\n".join(lines)

    def validate(self) -> None:
        """Check internal consistency (all referenced variables declared)."""
        from ..minic.folding import expression_variables

        names = set(self.variables)
        for transition in self.transitions:
            used: set[str] = set()
            if transition.guard is not None:
                used |= expression_variables(transition.guard)
            for target, expr in transition.updates:
                used.add(target)
                used |= expression_variables(expr)
            unknown = used - names
            if unknown:
                raise ValueError(
                    f"transition {transition.describe()} references undeclared "
                    f"variables {sorted(unknown)}"
                )
