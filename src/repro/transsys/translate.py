"""Translation of mini-C functions into transition systems ("C to SAL").

The translator mirrors the paper's conversion tool:

* every variable of the program (file-scope globals plus the function's
  parameters and locals) becomes a state variable;
* **by default every variable is modelled as a 16-bit signed integer** --
  "By default all variables created by our C to SAL translator are 16 bit
  signed integers" (Section 3.3) -- unless value ranges are supplied (that is
  the variable-range-analysis optimisation);
* every executable C statement becomes one transition; branch and switch
  decisions become guarded transitions (one per outcome);
* variables are *uninitialised* in the initial state -- "All variables
  contained in the model that are not input variables are uninitialised"
  (Section 3.2.5) -- unless the variable-initialisation optimisation is
  enabled, in which case non-input variables start at their declared
  initialiser (or 0).

The result is a :class:`TranslationResult` bundling the transition system with
the CFG-provenance maps the test-data generator needs (which location
corresponds to which basic block / CFG edge).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.builder import build_cfg
from ..cfg.graph import ControlFlowGraph, EdgeKind, TerminatorKind
from ..minic.ast_nodes import (
    AssignExpr,
    BinaryOp,
    CallExpr,
    DeclStmt,
    Expr,
    ExprStmt,
    IntLiteral,
    ReturnStmt,
    Stmt,
    UnaryOp,
)
from ..minic.folding import fold_expr
from ..minic.semantic import AnalyzedProgram
from ..minic.symbols import SymbolKind
from ..minic.types import INT16, IntRange
from .system import StateVariable, Transition, TransitionSystem


class TranslationError(Exception):
    """Raised when a function cannot be translated."""


@dataclass
class TranslationOptions:
    """Knobs of the C-to-transition-system conversion.

    ``variable_ranges``
        per-variable value ranges (variable range analysis, Section 3.2.4);
        variables without an entry get the default 16-bit signed domain.
    ``initialize_variables``
        give non-input variables a concrete initial value (Section 3.2.5).
    ``excluded_variables``
        variables removed from the model (dead-variable elimination,
        Section 3.2.6); assignments to them become skip transitions so the
        control structure -- and hence counterexample lengths -- stays intact.
    ``use_declared_ranges``
        honour ``#pragma range`` annotations on input variables even without
        full range analysis (the paper notes the code generator can annotate
        ranges "from the MatLab/Simulink model in most of the cases").
    """

    variable_ranges: dict[str, IntRange] = field(default_factory=dict)
    initialize_variables: bool = False
    excluded_variables: frozenset[str] = frozenset()
    use_declared_ranges: bool = False


@dataclass
class TranslationResult:
    """A transition system plus provenance information."""

    system: TransitionSystem
    cfg: ControlFlowGraph
    #: CFG block id -> location at the block's entry
    block_location: dict[int, int]
    #: location -> CFG block id (inverse of the above, plus intermediate
    #: locations inside blocks)
    location_block: dict[int, int]
    final_location: int

    def location_of_block(self, block_id: int) -> int:
        try:
            return self.block_location[block_id]
        except KeyError as exc:
            raise TranslationError(f"no location for block {block_id}") from exc

    # ------------------------------------------------------------------ #
    # slice-aware derivation
    # ------------------------------------------------------------------ #
    def sliced(
        self,
        relevant_variables: frozenset[str],
        transitions: list[Transition],
    ) -> "TranslationResult":
        """A translation of the same function restricted to a slice.

        Only *relevant_variables* are materialised as state bits; updates to
        dropped variables become skip updates (guards are the caller's
        responsibility: a sound slice only drops variables no kept guard
        depends on, see :mod:`repro.mc.slicing`).  The CFG provenance maps
        are shared with the base result, so goals built against the original
        block/location numbering stay valid on the sliced system.
        """
        variables = {
            name: variable
            for name, variable in self.system.variables.items()
            if name in relevant_variables
        }
        kept_locations = {self.system.initial_location}
        sliced_transitions: list[Transition] = []
        for transition in transitions:
            kept_locations.add(transition.source)
            kept_locations.add(transition.target)
            sliced_transitions.append(
                Transition(
                    source=transition.source,
                    target=transition.target,
                    guard=transition.guard,
                    updates=[
                        (name, expr)
                        for name, expr in transition.updates
                        if name in variables
                    ],
                    labels=transition.labels,
                    statement_count=transition.statement_count,
                )
            )
        system = TransitionSystem(
            name=self.system.name,
            variables=variables,
            transitions=sliced_transitions,
            initial_location=self.system.initial_location,
            final_locations={
                location
                for location in self.system.final_locations
                if location in kept_locations
            },
            annotations=list(self.system.annotations)
            + [
                f"slice: {len(variables)}/{len(self.system.variables)} variables, "
                f"{len(sliced_transitions)}/{len(self.system.transitions)} transitions"
            ],
        )
        return TranslationResult(
            system=system,
            cfg=self.cfg,
            block_location=self.block_location,
            location_block=self.location_block,
            final_location=self.final_location,
        )


def edge_label(source: int, target: int, kind: EdgeKind) -> str:
    """The transition label identifying a CFG edge."""
    return f"edge:{source}->{target}:{kind.value}"


def block_label(block_id: int) -> str:
    """The transition label identifying entry into a CFG block."""
    return f"block:{block_id}"


class CToTransitionSystem:
    """Translates one function of an analysed program."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        function_name: str,
        options: TranslationOptions | None = None,
        cfg: ControlFlowGraph | None = None,
    ):
        self._analyzed = analyzed
        self._function = analyzed.program.function(function_name)
        self._table = analyzed.table(function_name)
        self._options = options or TranslationOptions()
        self._cfg = cfg if cfg is not None else build_cfg(self._function)
        self._next_location = 0
        self._system = TransitionSystem(name=function_name)
        self._block_location: dict[int, int] = {}
        self._location_block: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def translate(self) -> TranslationResult:
        self._declare_variables()
        self._assign_block_locations()
        final_location = self._block_location[self._cfg.exit.block_id]
        self._system.final_locations = {final_location}
        first_real = self._cfg.successors(self._cfg.entry)
        if not first_real:
            raise TranslationError("function has an empty body")
        self._system.initial_location = self._block_location[first_real[0].block_id]

        for block in self._cfg.blocks():
            if block.is_virtual:
                continue
            self._translate_block(block)
        self._system.validate()
        return TranslationResult(
            system=self._system,
            cfg=self._cfg,
            block_location=dict(self._block_location),
            location_block=dict(self._location_block),
            final_location=final_location,
        )

    # ------------------------------------------------------------------ #
    # variables
    # ------------------------------------------------------------------ #
    def _declare_variables(self) -> None:
        program = self._analyzed.program
        for name, symbol in self._table.variables.items():
            if not symbol.is_variable:
                continue
            if name in self._options.excluded_variables:
                continue
            domain = self._domain_for(name, symbol.ctype, symbol.declared_range)
            is_input = symbol.is_input or name in program.input_variables
            initial = self._initial_value(name, symbol.kind, is_input, domain)
            self._system.variables[name] = StateVariable(
                name=name,
                domain=domain,
                ctype=symbol.ctype,
                is_input=is_input,
                initial=initial,
            )

    def _domain_for(self, name: str, ctype, declared: IntRange | None) -> IntRange:
        if name in self._options.variable_ranges:
            return self._options.variable_ranges[name]
        if self._options.use_declared_ranges and declared is not None:
            return declared
        # unoptimised default: everything is a 16-bit signed integer
        del ctype
        return INT16.value_range()

    def _initial_value(
        self, name: str, kind: SymbolKind, is_input: bool, domain: IntRange
    ) -> int | None:
        if is_input:
            return None  # inputs are always free
        if not self._options.initialize_variables:
            return None  # unoptimised: uninitialised variables
        # optimisation 3.2.5: concrete initial values
        if kind is SymbolKind.GLOBAL:
            decl = self._analyzed.program.global_decl(name)
            if decl.init is not None:
                folded = fold_expr(decl.init)
                if isinstance(folded, IntLiteral):
                    return domain.clamp(folded.value)
        return domain.clamp(0)

    # ------------------------------------------------------------------ #
    # locations and transitions
    # ------------------------------------------------------------------ #
    def _fresh_location(self, block_id: int) -> int:
        location = self._next_location
        self._next_location += 1
        self._location_block[location] = block_id
        return location

    def _assign_block_locations(self) -> None:
        for block in self._cfg.blocks():
            self._block_location[block.block_id] = self._fresh_location(block.block_id)

    def _translate_block(self, block) -> None:
        current = self._block_location[block.block_id]
        returned = False
        for stmt in block.statements:
            if isinstance(stmt, ReturnStmt):
                self._emit(
                    Transition(
                        source=current,
                        target=self._block_location[self._cfg.exit.block_id],
                        guard=None,
                        updates=[],
                        labels=(block_label(block.block_id), "return"),
                    )
                )
                returned = True
                break
            transitions_updates = self._statement_updates(stmt)
            if transitions_updates is None:
                continue  # declaration without initialiser: no state change
            for updates, extra_labels in transitions_updates:
                target = self._fresh_location(block.block_id)
                self._emit(
                    Transition(
                        source=current,
                        target=target,
                        guard=None,
                        updates=updates,
                        labels=(block_label(block.block_id),) + extra_labels,
                    )
                )
                current = target
        if returned:
            return
        self._translate_terminator(block, current)

    def _statement_updates(
        self, stmt: Stmt
    ) -> list[tuple[list[tuple[str, Expr]], tuple[str, ...]]] | None:
        """Updates (one list per emitted transition) of a straight-line statement."""
        if isinstance(stmt, DeclStmt):
            if stmt.init is None:
                return None
            return [(self._assignment(stmt.name, stmt.init), ())]
        if isinstance(stmt, ExprStmt):
            expr = stmt.expr
            assignments = self._collect_assignments(expr)
            if not assignments:
                # a pure call (or an effect-free expression): keep one skip
                # transition so counterexample step counts match C statements
                labels: tuple[str, ...] = ()
                if isinstance(expr, CallExpr):
                    labels = (f"call:{expr.name}",)
                return [([], labels)]
            return [
                (self._assignment(target, value), ()) for target, value in assignments
            ]
        raise TranslationError(f"cannot translate statement {type(stmt).__name__}")

    def _assignment(self, target: str, value: Expr) -> list[tuple[str, Expr]]:
        if target in self._options.excluded_variables:
            return []  # dead variable: the statement becomes a skip transition
        return [(target, self._sanitize_expr(value))]

    def _collect_assignments(self, expr: Expr) -> list[tuple[str, Expr]]:
        """Assignments contained in *expr*, innermost (evaluated) first."""
        assignments: list[tuple[str, Expr]] = []

        def visit(node: Expr) -> None:
            for child in node.children():
                if isinstance(child, Expr):
                    visit(child)
            if isinstance(node, AssignExpr):
                assignments.append((node.target.name, node.value))

        visit(expr)
        return assignments

    def _sanitize_expr(self, expr: Expr) -> Expr:
        """Fold constants and strip nested assignments/calls from expressions.

        Calls have no data semantics in the model (external library calls);
        they are replaced by the literal 0.  Nested assignments are replaced
        by their right-hand side (the assignment itself is emitted as its own
        update).
        """
        folded = fold_expr(expr)
        return self._strip(folded)

    def _strip(self, expr: Expr) -> Expr:
        if isinstance(expr, CallExpr):
            return IntLiteral(value=0, location=expr.location, ctype=INT16)
        if isinstance(expr, AssignExpr):
            return self._strip(expr.value)
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                op=expr.op,
                left=self._strip(expr.left),
                right=self._strip(expr.right),
                location=expr.location,
                ctype=expr.ctype,
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(
                op=expr.op,
                operand=self._strip(expr.operand),
                location=expr.location,
                ctype=expr.ctype,
            )
        return expr

    # ------------------------------------------------------------------ #
    def _translate_terminator(self, block, current: int) -> None:
        terminator = block.terminator
        if terminator.kind in (TerminatorKind.JUMP, TerminatorKind.NONE):
            edges = self._cfg.out_edges(block)
            if not edges:
                return
            edge = edges[0]
            self._emit(
                Transition(
                    source=current,
                    target=self._block_location[edge.target],
                    guard=None,
                    updates=[],
                    labels=(
                        block_label(block.block_id),
                        edge_label(edge.source, edge.target, edge.kind),
                        "goto",
                    ),
                    statement_count=0,
                )
            )
            return
        if terminator.kind is TerminatorKind.RETURN:
            # the return statement already produced its transition
            return
        if terminator.kind is TerminatorKind.BRANCH:
            self._translate_branch(block, current)
            return
        if terminator.kind is TerminatorKind.SWITCH:
            self._translate_switch(block, current)
            return
        raise TranslationError(f"unsupported terminator {terminator.kind}")

    def _translate_branch(self, block, current: int) -> None:
        condition = self._sanitize_expr(block.terminator.condition)
        negated = fold_expr(UnaryOp(op="!", operand=condition, ctype=None))
        for edge in self._cfg.out_edges(block):
            if edge.kind in (EdgeKind.TRUE, EdgeKind.BACK):
                guard: Expr | None = condition
            elif edge.kind is EdgeKind.FALSE:
                guard = negated
            else:
                guard = None
            self._emit(
                Transition(
                    source=current,
                    target=self._block_location[edge.target],
                    guard=guard,
                    updates=[],
                    labels=(
                        block_label(block.block_id),
                        edge_label(edge.source, edge.target, edge.kind),
                    ),
                )
            )

    def _translate_switch(self, block, current: int) -> None:
        scrutinee = self._sanitize_expr(block.terminator.condition)
        all_case_values: list[int] = []
        for edge in self._cfg.out_edges(block):
            if edge.kind is EdgeKind.CASE:
                all_case_values.extend(edge.case_values)
        for edge in self._cfg.out_edges(block):
            if edge.kind is EdgeKind.CASE:
                guard = self._values_guard(scrutinee, list(edge.case_values))
            elif edge.kind is EdgeKind.DEFAULT:
                if all_case_values:
                    guard = fold_expr(
                        UnaryOp(
                            op="!",
                            operand=self._values_guard(scrutinee, all_case_values),
                            ctype=None,
                        )
                    )
                else:
                    guard = None
            else:
                guard = None
            self._emit(
                Transition(
                    source=current,
                    target=self._block_location[edge.target],
                    guard=guard,
                    updates=[],
                    labels=(
                        block_label(block.block_id),
                        edge_label(edge.source, edge.target, edge.kind),
                    ),
                )
            )

    @staticmethod
    def _values_guard(scrutinee: Expr, values: list[int]) -> Expr:
        guard: Expr | None = None
        for value in values:
            comparison = BinaryOp(
                op="==",
                left=scrutinee,
                right=IntLiteral(value=value, ctype=INT16),
            )
            guard = comparison if guard is None else BinaryOp(op="||", left=guard, right=comparison)
        assert guard is not None
        return guard

    def _emit(self, transition: Transition) -> None:
        self._system.transitions.append(transition)


def translate_function(
    analyzed: AnalyzedProgram,
    function_name: str,
    options: TranslationOptions | None = None,
    cfg: ControlFlowGraph | None = None,
) -> TranslationResult:
    """Translate *function_name* of *analyzed* into a transition system."""
    return CToTransitionSystem(analyzed, function_name, options, cfg).translate()
