"""End-to-end WCET analysis pipeline (parser → partition → test data → bound)."""

from __future__ import annotations

from .analyzer import AnalysisError, AnalyzerConfig, WcetAnalyzer, analyze_source

__all__ = ["AnalysisError", "AnalyzerConfig", "WcetAnalyzer", "analyze_source"]
