"""The end-to-end WCET analyzer.

:class:`WcetAnalyzer` wires the whole tool chain of the paper together:

1. parse + semantically analyse the program (``repro.minic``),
2. build the CFG and partition it into program segments for the configured
   path bound (``repro.cfg``, ``repro.partition``),
3. place instrumentation points (``repro.partition.instrument``),
4. generate test data for every segment path with the hybrid
   random / genetic / model-checking process (``repro.testgen``),
5. execute the instrumented program on the simulated HCS12 board and collect
   per-segment execution times (``repro.hw``, ``repro.measurement``),
6. combine the per-segment maxima into a WCET bound with the timing schema
   (``repro.wcet``) and, for small input spaces, compare against the
   exhaustively measured end-to-end WCET -- the paper's 250 vs 274 cycles
   comparison.

The result is a :class:`~repro.wcet.report.WcetReport`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping

from .. import obs
from ..cfg.builder import build_cfg
from ..hw.board import EvaluationBoard
from ..hw.cost_model import CostModel, HCS12_COST_MODEL
from ..measurement.database import MeasurementDatabase
from ..measurement.runner import MeasurementRunner
from ..minic import AnalyzedProgram, parse_and_analyze
from ..minic.calls import call_sites
from ..partition.general import GeneralPartitionOptions, GeneralPartitioner
from ..partition.instrument import build_instrumentation_plan
from ..partition.partitioner import PaperPartitioner, PartitionOptions
from ..resilience import (
    InjectedFault,
    current as resilience_context,
    poll_deadline,
)
from ..testgen.hybrid import CoverageSource, HybridOptions, HybridTestDataGenerator
from ..testgen.inputs import InputSpace
from ..wcet.end_to_end import EndToEndResult, exhaustive_end_to_end
from ..wcet.report import WcetReport
from ..wcet.timing_schema import TimingSchema, static_segment_pessimisation


class AnalysisError(Exception):
    """Raised when the end-to-end analysis cannot be completed."""


@dataclass
class AnalyzerConfig:
    """Configuration of one WCET analysis run."""

    #: the path bound *b* of the CFG partitioning
    path_bound: int = 4
    #: "paper" reproduces the algorithm of Section 2.2, "general" the
    #: extended partitioner of Section 2.3
    partitioner: str = "paper"
    cost_model: CostModel = field(default_factory=lambda: HCS12_COST_MODEL)
    hybrid: HybridOptions = field(default_factory=HybridOptions)
    partition_options: PartitionOptions = field(default_factory=PartitionOptions)
    #: run exhaustive end-to-end measurement when the input space has at most
    #: this many vectors (None disables the comparison entirely)
    exhaustive_limit: int | None = 20_000
    #: extra random vectors measured on top of the generated suite (more
    #: observations per segment never hurt the maxima)
    extra_random_vectors: int = 50
    #: interpreter step budget per run
    max_steps_per_run: int = 1_000_000
    #: run the sound static-analysis pass (``repro.sa``): branch-feasibility
    #: prefiltering of model-checking queries, static loop-bound inference
    #: and program diagnostics.  Verdicts and bounds are identical either
    #: way -- the pass only removes provably-useless solver work and
    #: tightens provably-exact loop bounds.
    static_analysis: bool = True


def _partition_function(function, cfg, config: AnalyzerConfig):
    """Partition *function*'s CFG per the configured partitioner."""
    if config.partitioner == "paper":
        return PaperPartitioner(
            config.path_bound, config.partition_options
        ).partition(function, cfg)
    if config.partitioner == "general":
        options = config.partition_options
        if not isinstance(options, GeneralPartitionOptions):
            options = GeneralPartitionOptions(
                default_loop_bound=config.partition_options.default_loop_bound
            )
        return GeneralPartitioner(config.path_bound, options).partition(
            function, cfg
        )
    raise AnalysisError(f"unknown partitioner {config.partitioner!r}")


def static_pessimised_report(
    analyzed: AnalyzedProgram,
    function_name: str,
    config: AnalyzerConfig | None = None,
    callee_bounds: Mapping[str, int] | None = None,
    reason: str = "job quarantined",
) -> WcetReport:
    """A sound WCET report built from static estimates alone -- no execution.

    This is the quarantine route of the project scheduler: when a job keeps
    crashing or times out, the function still needs *some* sound bound so
    its callers can be analysed.  Every segment enters the timing schema at
    its :func:`static_segment_pessimisation` (which dominates anything one
    execution could cost) and summarised callees keep their interprocedural
    charges, so the resulting bound is >= any measured bound -- just much
    coarser.  Nothing here runs test generation, the board or the model
    checker, so the quarantine path cannot crash the way the job did.
    """
    config = config or AnalyzerConfig()
    bounds = dict(callee_bounds or {})
    function = analyzed.program.function(function_name)
    cfg = build_cfg(function)
    partition = _partition_function(function, cfg, config)

    cost_model = config.cost_model
    if bounds:
        cost_model = dataclasses.replace(
            cost_model,
            external_call_cycles={
                **cost_model.external_call_cycles,
                **bounds,
            },
        )
    pessimised = {
        segment.segment_id: static_segment_pessimisation(cfg, segment, cost_model)
        for segment in partition.segments
    }
    schema = TimingSchema(
        cfg,
        partition,
        default_loop_bound=config.partition_options.default_loop_bound or 1,
        callee_bounds=bounds,
        call_overhead=cost_model.call_overhead,
    )
    bound = schema.compute(
        MeasurementDatabase(), pessimised_segments=pessimised
    )
    return WcetReport(
        function_name=function_name,
        path_bound=config.path_bound,
        partition=partition,
        bound=bound,
        database=MeasurementDatabase(),
        end_to_end=None,
        test_vectors_used=0,
        infeasible_paths=0,
        callee_bounds_used=dict(sorted(bounds.items())),
        summarised_call_sites=sum(
            1 for site in call_sites(function) if site.name in bounds
        ),
        degraded=True,
        fault_events=[reason],
    )


class WcetAnalyzer:
    """Run the complete measurement-based WCET analysis for one function."""

    def __init__(
        self,
        analyzed: AnalyzedProgram,
        function_name: str,
        config: AnalyzerConfig | None = None,
        callee_bounds: Mapping[str, int] | None = None,
    ):
        """``callee_bounds`` enables the interprocedural (compositional) mode.

        It maps callee names to their already-computed WCET bounds (see
        :mod:`repro.callgraph.summaries`).  Each listed callee is treated as
        opaque during measurement: the board does not execute its body but
        charges ``call_overhead + bound`` cycles per call -- the callee's
        worst case, not the cycles one particular invocation would take --
        so the resulting caller bound composes over the call graph.  The
        function under analysis may itself appear in the mapping (direct
        recursion): its top-level activation runs normally while nested
        self-calls are charged the given bound.  The exhaustive end-to-end
        verification runs on an unstubbed board, so same-unit callees
        execute for real and the safety comparison is honest for them;
        callees defined in *other* units are outside this unit's program
        and fall back to the external-call cost there, and recursive
        programs should disable the comparison (``exhaustive_limit=None``
        -- the project scheduler does so automatically for jobs on a
        recursion cycle), as real recursion does not terminate on the
        bounded interpreter.
        """
        self._analyzed = analyzed
        self._function = function_name
        self._config = config or AnalyzerConfig()
        self._callee_bounds = dict(callee_bounds or {})
        if not any(f.name == function_name for f in analyzed.program.functions):
            raise AnalysisError(f"program has no function {function_name!r}")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_source(
        cls,
        source: str,
        function_name: str,
        config: AnalyzerConfig | None = None,
        callee_bounds: Mapping[str, int] | None = None,
    ) -> "WcetAnalyzer":
        return cls(
            parse_and_analyze(source),
            function_name,
            config,
            callee_bounds=callee_bounds,
        )

    # ------------------------------------------------------------------ #
    def analyze(self) -> WcetReport:
        config = self._config
        # cooperative wall-clock timeout: the interpreter and the query
        # engine poll inside their hot loops, and the analysis stages poll
        # at their boundaries, so a job over its deadline stops at the next
        # checkpoint even when an individual stage finished quickly
        poll_deadline()
        function = self._analyzed.program.function(self._function)
        cfg = build_cfg(function)

        # 0. sound static analysis: branch feasibility (feeding the query
        #    engine's prefilter), exact loop bounds and program diagnostics.
        #    Skippable (--no-sa) and verdict-preserving by construction, so
        #    the measured bound is bit-identical either way.
        sa_result = None
        if config.static_analysis:
            from ..sa import run_static_analysis

            with obs.span("analyze.sa", function=self._function):
                sa_result = run_static_analysis(
                    cfg, self._analyzed.table(self._function)
                )
            config = dataclasses.replace(
                config,
                hybrid=dataclasses.replace(
                    config.hybrid,
                    model_checking=dataclasses.replace(
                        config.hybrid.model_checking,
                        prefilter=sa_result.prefilter,
                    ),
                ),
            )

        # 1. partition the CFG into program segments
        with obs.span("analyze.partition", function=self._function):
            partition = _partition_function(function, cfg, config)

        # 2. instrumentation plan + simulated board; with callee summaries the
        #    measurement board stubs every summarised callee and charges its
        #    WCET bound through the cost model's external-call table
        plan = build_instrumentation_plan(partition, cfg)
        cost_model = self._measurement_cost_model()
        board = EvaluationBoard(
            self._analyzed,
            cost_model=cost_model,
            max_steps=config.max_steps_per_run,
            stub_functions=sorted(self._callee_bounds),
        )

        # 3. hybrid test-data generation
        generator = HybridTestDataGenerator(
            self._analyzed, self._function, board, partition, cfg, config.hybrid
        )
        poll_deadline()
        with obs.span("analyze.testgen", function=self._function):
            suite = generator.generate()
        poll_deadline()

        # 4. measurement campaign
        database = MeasurementDatabase()
        runner = MeasurementRunner(board, self._function, partition, plan, cfg)
        vectors = list(suite.vectors)
        if config.extra_random_vectors:
            from ..testgen.random_gen import RandomTestDataGenerator

            extra = RandomTestDataGenerator(generator.input_space, seed=99)
            vectors.extend(extra.generate(config.extra_random_vectors))
        if not vectors:
            raise AnalysisError(
                "test-data generation produced no vectors; cannot measure anything"
            )
        with obs.span(
            "analyze.measure", function=self._function, vectors=len(vectors)
        ):
            campaign = runner.run_vectors(vectors, database)

        # degradation bookkeeping: any injected fault that may have cost
        # observations (a phase cut short, a vector lost, a solver query
        # dropped) floors EVERY feasible segment at its static worst-case
        # estimate below -- lost coverage can only lower measured maxima, so
        # the static floor is exactly what keeps the bound sound
        fault_events = list(suite.fault_events) + list(campaign.fault_events)
        if suite.engine_fault_queries:
            fault_events.append(
                f"{suite.engine_fault_queries} model-checking query(ies) "
                "degraded by injected solver faults"
            )

        # 5. WCET bound via the timing schema; segments whose every path was
        #    proven infeasible contribute nothing (they can never execute),
        #    while feasible-but-unmeasured segments (uncovered targets,
        #    exhausted query budgets) enter at a static worst-case estimate
        #    instead of failing the analysis
        with obs.span("analyze.schema", function=self._function):
            unreachable = self._fully_infeasible_segments(
                partition, suite, database
            )
            pessimised = {
                segment.segment_id: static_segment_pessimisation(
                    cfg, segment, cost_model
                )
                for segment in partition.segments
                if database.max_cycles(segment.segment_id) is None
                and segment.segment_id not in unreachable
            }
            floors = None
            if fault_events:
                floors = {
                    segment.segment_id: static_segment_pessimisation(
                        cfg, segment, cost_model
                    )
                    for segment in partition.segments
                    if segment.segment_id not in unreachable
                }
            schema = TimingSchema(
                cfg,
                partition,
                default_loop_bound=config.partition_options.default_loop_bound
                or 1,
                callee_bounds=self._callee_bounds,
                call_overhead=cost_model.call_overhead,
                inferred_loop_bounds=(
                    sa_result.loop_bounds if sa_result is not None else None
                ),
            )
            bound = schema.compute(
                database,
                unreachable_segments=unreachable,
                pessimised_segments=pessimised,
                floor_segments=floors,
            )

        # 6. optional exhaustive end-to-end comparison; the verification board
        #    executes the *real* callee bodies (no stubs), so a summarised
        #    bound is checked against genuine end-to-end behaviour.  An
        #    injected fault here only costs the comparison, never the bound.
        verification_board = board
        if self._callee_bounds:
            verification_board = EvaluationBoard(
                self._analyzed,
                cost_model=config.cost_model,
                max_steps=config.max_steps_per_run,
            )
        try:
            with obs.span("analyze.exhaustive", function=self._function):
                end_to_end = self._maybe_exhaustive(
                    verification_board, generator.input_space
                )
        except InjectedFault as fault:
            end_to_end = None
            fault_events.append(
                f"exhaustive end-to-end comparison skipped: {fault}"
            )

        context = resilience_context()
        if context is not None:
            for event in fault_events:
                context.note(event)

        return WcetReport(
            function_name=self._function,
            path_bound=config.path_bound,
            partition=partition,
            bound=bound,
            database=database,
            end_to_end=end_to_end,
            test_vectors_used=len(vectors),
            infeasible_paths=len(suite.infeasible_targets),
            callee_bounds_used=dict(sorted(self._callee_bounds.items())),
            summarised_call_sites=self._summarised_site_count(function),
            mc_diagnostics=dict(suite.mc_diagnostics),
            degraded=floors is not None,
            fault_events=fault_events,
            sa_diagnostics=(
                [diagnostic.to_dict() for diagnostic in sa_result.diagnostics]
                if sa_result is not None
                else []
            ),
            sa_edges_pruned=(
                sa_result.edges_pruned if sa_result is not None else 0
            ),
            sa_loop_bounds_inferred=(
                len(sa_result.loop_bounds) if sa_result is not None else 0
            ),
            generator_statistics={
                "random_targets": len(suite.targets_by_source(CoverageSource.RANDOM)),
                "genetic_targets": len(suite.targets_by_source(CoverageSource.GENETIC)),
                "model_checking_targets": len(
                    suite.targets_by_source(CoverageSource.MODEL_CHECKING)
                ),
                "heuristic_share_percent": int(round(100 * suite.heuristic_share)),
                "model_checking_queries": suite.model_checking_queries,
                "model_checking_budget_exhausted": suite.budget_exhausted_queries,
                "model_checking_engine_faults": suite.engine_fault_queries,
                "genetic_evaluations": suite.genetic_evaluations,
                "random_vectors_used": suite.random_vectors_used,
            },
        )

    # ------------------------------------------------------------------ #
    def _measurement_cost_model(self) -> CostModel:
        """The config's cost model, with callee bounds as external-call costs."""
        base = self._config.cost_model
        if not self._callee_bounds:
            return base
        return dataclasses.replace(
            base,
            external_call_cycles={
                **base.external_call_cycles,
                **self._callee_bounds,
            },
        )

    def _summarised_site_count(self, function) -> int:
        """Syntactic call sites of *function* charged with a callee summary."""
        return sum(
            1
            for site in call_sites(function)
            if site.name in self._callee_bounds
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _fully_infeasible_segments(partition, suite, database) -> set[int]:
        """Segments with no measurements whose every path target is infeasible."""
        infeasible_by_segment: dict[int, int] = {}
        total_by_segment: dict[int, int] = {}
        for report in suite.reports:
            segment_id = report.target.segment_id
            total_by_segment[segment_id] = total_by_segment.get(segment_id, 0) + 1
            if report.source is CoverageSource.INFEASIBLE:
                infeasible_by_segment[segment_id] = (
                    infeasible_by_segment.get(segment_id, 0) + 1
                )
        unreachable: set[int] = set()
        for segment in partition.segments:
            if database.max_cycles(segment.segment_id) is not None:
                continue
            total = total_by_segment.get(segment.segment_id, 0)
            if total and infeasible_by_segment.get(segment.segment_id, 0) == total:
                unreachable.add(segment.segment_id)
        return unreachable

    def _maybe_exhaustive(
        self, board: EvaluationBoard, input_space: InputSpace
    ) -> EndToEndResult | None:
        limit = self._config.exhaustive_limit
        if limit is None:
            return None
        if input_space.size() > limit:
            return None
        return exhaustive_end_to_end(
            board, self._function, input_space.ranges(), limit=limit
        )


def analyze_source(
    source: str,
    function_name: str,
    config: AnalyzerConfig | None = None,
    callee_bounds: Mapping[str, int] | None = None,
) -> WcetReport:
    """Convenience wrapper: parse *source* and analyse *function_name*."""
    return WcetAnalyzer.from_source(
        source, function_name, config, callee_bounds=callee_bounds
    ).analyze()
