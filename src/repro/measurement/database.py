"""Measurement database: observed execution times per program segment.

Each measurement is the cycle difference between a segment's entry and exit
instrumentation points during one run, keyed by the segment and by the
concrete path taken through the segment (so the tooling can tell whether every
path of a segment has been observed -- that is the coverage goal of the
test-data generator).  The WCET computation consumes the per-segment maxima.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: A path through a segment, identified by the executed block-id sequence.
PathKey = tuple[int, ...]


@dataclass
class SegmentMeasurement:
    """One observed execution of a program segment."""

    segment_id: int
    path: PathKey
    cycles: int
    inputs: dict[str, int] = field(default_factory=dict)


@dataclass
class SegmentStatistics:
    """Aggregated observations of one segment."""

    segment_id: int
    observations: int = 0
    max_cycles: int = 0
    min_cycles: int | None = None
    total_cycles: int = 0
    paths: dict[PathKey, int] = field(default_factory=dict)
    worst_inputs: dict[str, int] = field(default_factory=dict)

    @property
    def mean_cycles(self) -> float:
        return self.total_cycles / self.observations if self.observations else 0.0

    @property
    def observed_path_count(self) -> int:
        return len(self.paths)


class MeasurementDatabase:
    """Collects segment measurements across runs."""

    def __init__(self) -> None:
        self._measurements: list[SegmentMeasurement] = []
        self._stats: dict[int, SegmentStatistics] = {}

    # ------------------------------------------------------------------ #
    def add(self, measurement: SegmentMeasurement) -> None:
        self._measurements.append(measurement)
        stats = self._stats.setdefault(
            measurement.segment_id, SegmentStatistics(segment_id=measurement.segment_id)
        )
        stats.observations += 1
        stats.total_cycles += measurement.cycles
        if measurement.cycles > stats.max_cycles:
            stats.max_cycles = measurement.cycles
            stats.worst_inputs = dict(measurement.inputs)
        if stats.min_cycles is None or measurement.cycles < stats.min_cycles:
            stats.min_cycles = measurement.cycles
        best = stats.paths.get(measurement.path, 0)
        stats.paths[measurement.path] = max(best, measurement.cycles)

    def extend(self, measurements: list[SegmentMeasurement]) -> None:
        for measurement in measurements:
            self.add(measurement)

    # ------------------------------------------------------------------ #
    def measurements(self) -> list[SegmentMeasurement]:
        return list(self._measurements)

    def statistics(self, segment_id: int) -> SegmentStatistics | None:
        return self._stats.get(segment_id)

    def all_statistics(self) -> dict[int, SegmentStatistics]:
        return dict(self._stats)

    def max_cycles(self, segment_id: int) -> int | None:
        """Worst observed execution time of a segment (``None`` if unmeasured)."""
        stats = self._stats.get(segment_id)
        return stats.max_cycles if stats is not None else None

    def observed_paths(self, segment_id: int) -> set[PathKey]:
        stats = self._stats.get(segment_id)
        return set(stats.paths) if stats is not None else set()

    def unmeasured_segments(self, segment_ids: list[int]) -> list[int]:
        return [sid for sid in segment_ids if sid not in self._stats]

    def __len__(self) -> int:
        return len(self._measurements)
