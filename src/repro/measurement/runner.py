"""Measurement runs: execute test vectors and extract per-segment timings.

This is the "runtime measurements performed on the target host" part of the
paper's flow.  For every test vector the instrumented program runs on the
simulated evaluation board; the resulting instrumentation-point readings are
paired up (a segment's ENTRY reading with the next EXIT reading of the same
segment) and the cycle differences are stored in the
:class:`~repro.measurement.database.MeasurementDatabase` together with the
concrete path that was executed inside the segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..hw.board import EvaluationBoard, InstrumentedRun
from ..resilience import InjectedFault
from ..partition.instrument import InstrumentationPlan, PointKind
from ..partition.segment import PartitionResult
from .database import MeasurementDatabase, SegmentMeasurement


@dataclass
class MeasurementCampaign:
    """Summary of one batch of measurement runs."""

    runs: int = 0
    measurements: int = 0
    end_to_end_max: int = 0
    end_to_end_worst_inputs: dict[str, int] = field(default_factory=dict)
    #: vectors whose run died on an injected fault (their observations are
    #: lost; the analyzer floors the bound at static estimates in response)
    faulted_runs: int = 0
    #: diagnostics of the injected faults that cost vectors
    fault_events: list[str] = field(default_factory=list)


class MeasurementRunner:
    """Drives instrumented runs and fills the measurement database."""

    def __init__(
        self,
        board: EvaluationBoard,
        function_name: str,
        partition: PartitionResult,
        plan: InstrumentationPlan,
        cfg: ControlFlowGraph,
    ):
        self._board = board
        self._function = function_name
        self._partition = partition
        self._plan = plan
        self._cfg = cfg

    # ------------------------------------------------------------------ #
    def run_vectors(
        self,
        vectors: list[dict[str, int]],
        database: MeasurementDatabase,
    ) -> MeasurementCampaign:
        """Run every test vector and record all segment measurements.

        A run that dies on an injected fault loses that vector's
        observations but never the campaign: the loss is counted
        (``faulted_runs``) and the analyzer compensates by flooring every
        segment at its static pessimisation, so a fault can only ever
        *raise* the reported bound.
        """
        campaign = MeasurementCampaign()
        for vector in vectors:
            try:
                instrumented = self._board.run_instrumented(
                    self._function, vector, self._plan
                )
            except InjectedFault as fault:
                campaign.faulted_runs += 1
                campaign.fault_events.append(
                    f"measurement run lost to injected fault: {fault}"
                )
                continue
            measurements = self.extract_measurements(instrumented, vector)
            database.extend(measurements)
            campaign.runs += 1
            campaign.measurements += len(measurements)
            if instrumented.run.total_cycles > campaign.end_to_end_max:
                campaign.end_to_end_max = instrumented.run.total_cycles
                campaign.end_to_end_worst_inputs = dict(vector)
        return campaign

    # ------------------------------------------------------------------ #
    def extract_measurements(
        self, instrumented: InstrumentedRun, inputs: dict[str, int]
    ) -> list[SegmentMeasurement]:
        """Pair entry/exit readings into per-segment execution times."""
        measurements: list[SegmentMeasurement] = []
        readings = instrumented.readings
        block_trace = instrumented.run.block_trace
        for index, reading in enumerate(readings):
            if reading.point.kind is not PointKind.ENTRY:
                continue
            segment_id = reading.point.segment_id
            segment = self._partition.segment(segment_id)
            # the matching exit is the first EXIT reading of the same segment
            # at or after this trace position
            exit_reading = None
            for candidate in readings[index + 1 :]:
                if (
                    candidate.point.segment_id == segment_id
                    and candidate.point.kind is PointKind.EXIT
                    and candidate.trace_index >= reading.trace_index
                ):
                    exit_reading = candidate
                    break
            if exit_reading is None:
                continue
            path_blocks = tuple(
                event.block_id
                for event in block_trace[reading.trace_index : exit_reading.trace_index]
                if event.block_id in segment.block_ids
            )
            measurements.append(
                SegmentMeasurement(
                    segment_id=segment_id,
                    path=path_blocks,
                    cycles=exit_reading.cycles - reading.cycles,
                    inputs=dict(inputs),
                )
            )
        return measurements

    # ------------------------------------------------------------------ #
    def coverage(self, database: MeasurementDatabase) -> dict[int, tuple[int, int]]:
        """Per-segment (observed paths, required paths) coverage summary."""
        report: dict[int, tuple[int, int]] = {}
        for segment in self._partition.segments:
            observed = len(database.observed_paths(segment.segment_id))
            report[segment.segment_id] = (observed, segment.path_count)
        return report

    def fully_covered(self, database: MeasurementDatabase) -> bool:
        """True when every segment has at least as many observed paths as required."""
        return all(
            observed >= required
            for observed, required in self.coverage(database).values()
        )
