"""Measurement subsystem: instrumented runs and the measurement database."""

from __future__ import annotations

from .database import (
    MeasurementDatabase,
    PathKey,
    SegmentMeasurement,
    SegmentStatistics,
)
from .runner import MeasurementCampaign, MeasurementRunner

__all__ = [
    "MeasurementDatabase",
    "PathKey",
    "SegmentMeasurement",
    "SegmentStatistics",
    "MeasurementCampaign",
    "MeasurementRunner",
]
