"""Mapping between AST statements and the CFG blocks that contain them.

The partitioner traverses the abstract syntax tree (Section 2.2 of the paper:
"The CFG is partitioned into PS following the abstract syntax tree") but
segments are ultimately *sets of CFG blocks*.  :class:`AstBlockMap` provides
the bridge:

* every straight-line statement maps to the block whose ``statements`` list
  holds it,
* every branching statement (``if``/``switch``/loop) maps to the block whose
  terminator it drives, and
* a whole AST subtree maps to the union of the blocks of its statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..minic.ast_nodes import (
    CompoundStmt,
    DoWhileStmt,
    ExprStmt,
    ForStmt,
    IfStmt,
    Node,
    Stmt,
    SwitchCase,
    SwitchStmt,
    WhileStmt,
)


@dataclass
class AstBlockMap:
    """Bidirectional statement <-> block mapping for one function CFG."""

    cfg: ControlFlowGraph
    statement_block: dict[int, int] = field(default_factory=dict)
    terminator_block: dict[int, int] = field(default_factory=dict)

    @classmethod
    def build(cls, cfg: ControlFlowGraph) -> "AstBlockMap":
        mapping = cls(cfg=cfg)
        for block in cfg.blocks():
            for stmt in block.statements:
                mapping.statement_block[stmt.node_id] = block.block_id
                # The builder wraps for-loop step expressions into synthetic
                # ExprStmt nodes; index the wrapped expression too so that
                # the original AST subtree still finds the step block.
                if isinstance(stmt, ExprStmt):
                    mapping.statement_block.setdefault(stmt.expr.node_id, block.block_id)
            anchor = block.terminator.ast_node
            if anchor is not None:
                # Several blocks can share one AST anchor (e.g. the condition
                # block of a do-while and its body-start block); the *first*
                # block with the branching terminator wins, which is the one
                # evaluating the condition.
                mapping.terminator_block.setdefault(anchor.node_id, block.block_id)
        return mapping

    # ------------------------------------------------------------------ #
    def block_of_statement(self, stmt: Stmt) -> int | None:
        """Block containing *stmt* (``None`` for unreachable/empty stmts)."""
        return self.statement_block.get(stmt.node_id)

    def block_of_branch(self, stmt: Node) -> int | None:
        """Block evaluating the condition of a branching statement."""
        return self.terminator_block.get(stmt.node_id)

    def blocks_of_subtree(self, node: Node) -> set[int]:
        """All blocks holding statements or branch conditions of *node*'s subtree.

        For a branching statement the returned set includes its condition
        block; for a branch *alternative* (a then/else/case body) it does not,
        because the condition lives in the parent region -- which is exactly
        what the partitioner needs when it turns alternatives into program
        segments.
        """
        blocks: set[int] = set()
        for descendant in node.walk():
            node_id = descendant.node_id
            if node_id in self.statement_block:
                blocks.add(self.statement_block[node_id])
            if node_id in self.terminator_block:
                blocks.add(self.terminator_block[node_id])
        return blocks

    def alternatives(self, stmt: Stmt) -> list[tuple[str, Node]]:
        """The branch alternatives of a branching statement.

        Returns ``(label, subtree)`` pairs: then/else branches of an ``if``,
        the case bodies of a ``switch`` (labelled ``case <values>`` or
        ``default``), and the body of a loop.  Non-branching statements return
        an empty list.
        """
        if isinstance(stmt, IfStmt):
            alternatives: list[tuple[str, Node]] = [("then", stmt.then_branch)]
            if stmt.else_branch is not None:
                alternatives.append(("else", stmt.else_branch))
            return alternatives
        if isinstance(stmt, SwitchStmt):
            result: list[tuple[str, Node]] = []
            for case in stmt.cases:
                result.append((self._case_label(case), case.body))
            return result
        if isinstance(stmt, WhileStmt):
            return [("loop-body", stmt.body)]
        if isinstance(stmt, DoWhileStmt):
            return [("loop-body", stmt.body)]
        if isinstance(stmt, ForStmt):
            return [("loop-body", stmt.body)]
        return []

    @staticmethod
    def _case_label(case: SwitchCase) -> str:
        if case.is_default:
            return "default"
        return "case " + ",".join(str(v) for v in case.values)

    @staticmethod
    def is_branching(stmt: Stmt) -> bool:
        """True for statements that introduce control-flow alternatives."""
        return isinstance(stmt, (IfStmt, SwitchStmt, WhileStmt, DoWhileStmt, ForStmt))

    @staticmethod
    def nested_statements(node: Node) -> list[Stmt]:
        """The statement sequence directly inside a compound/subtree root.

        Used by the partitioner to walk a region "top level" without
        descending into nested branch alternatives (those are handled through
        :meth:`alternatives`).
        """
        if isinstance(node, CompoundStmt):
            return list(node.statements)
        if isinstance(node, Stmt):
            return [node]
        return []
