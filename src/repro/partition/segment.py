"""Program segments -- the measurement units of the paper.

Section 2.1 of the paper:

    "A PS is a subgraph of the CFG that can be entered only via the
    transition of a single control edge, multiple exit edges are possible.
    A structured program segment (SPS) is a PS that has only a single exit
    edge."

A :class:`ProgramSegment` is such a subgraph plus the bookkeeping the rest of
the tool chain needs: its internal path count (how many measurements it
costs), its entry block and exit edges (where instrumentation points go), and
the AST region it corresponds to (how the timing schema recombines it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph, Edge
from ..minic.ast_nodes import Node


class SegmentKind(enum.Enum):
    """How a segment was formed by the partitioner."""

    #: A single basic block measured on its own (the smallest unit of PSs).
    BASIC_BLOCK = "basic-block"
    #: A branch alternative (then/else branch, case body, loop body) measured
    #: as a whole because its path count is within the bound.
    REGION = "region"
    #: The entire function measured end to end.
    WHOLE_FUNCTION = "whole-function"
    #: A straight-line run of blocks fused by the generalised partitioner.
    STRAIGHT_LINE = "straight-line"


@dataclass
class ProgramSegment:
    """One measurement unit produced by CFG partitioning.

    Attributes
    ----------
    segment_id:
        Dense index assigned by the partitioner (stable within one result).
    kind:
        How the segment was formed.
    block_ids:
        The CFG blocks covered by the segment.
    entry_block:
        The unique block through which control enters the segment.
    path_count:
        Number of execution paths inside the segment == number of
        measurements required to characterise it.
    ast_node:
        The AST statement/region the segment corresponds to (``None`` for
        single basic blocks without a natural AST anchor).
    description:
        Human-readable summary used in reports.
    """

    segment_id: int
    kind: SegmentKind
    block_ids: frozenset[int]
    entry_block: int
    path_count: int
    ast_node: Node | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.entry_block not in self.block_ids:
            raise ValueError("entry block must belong to the segment")
        if self.path_count < 1:
            raise ValueError("a segment has at least one path")

    # ------------------------------------------------------------------ #
    def contains_block(self, block_id: int) -> bool:
        return block_id in self.block_ids

    @property
    def is_single_block(self) -> bool:
        return len(self.block_ids) == 1

    def entry_edges(self, cfg: ControlFlowGraph) -> list[Edge]:
        """CFG edges entering the segment from outside."""
        return [
            edge
            for edge in cfg.in_edges(self.entry_block)
            if edge.source not in self.block_ids
        ]

    def exit_edges(self, cfg: ControlFlowGraph) -> list[Edge]:
        """CFG edges leaving the segment."""
        edges: list[Edge] = []
        for block_id in sorted(self.block_ids):
            for edge in cfg.out_edges(block_id):
                if edge.target not in self.block_ids:
                    edges.append(edge)
        return edges

    def is_structured(self, cfg: ControlFlowGraph) -> bool:
        """True for an SPS (single exit edge) in the paper's terminology."""
        return len(self.exit_edges(cfg)) <= 1

    def validate(self, cfg: ControlFlowGraph) -> None:
        """Check the PS invariants of Section 2.1 against *cfg*.

        Raises :class:`ValueError` when the subgraph is not a PS, i.e. when a
        block other than the entry block is reachable from outside the
        segment, or when the entry block is reached through more than one
        external edge (a basic block that is a join point is allowed -- it is
        entered via multiple edges but still forms the smallest-granularity
        measurement unit; the check is therefore only enforced for multi-block
        segments, matching the paper's use).
        """
        for block_id in self.block_ids:
            cfg.block(block_id)  # raises for unknown ids
        if len(self.block_ids) == 1:
            return
        for block_id in self.block_ids:
            if block_id == self.entry_block:
                continue
            for edge in cfg.in_edges(block_id):
                if edge.source not in self.block_ids:
                    raise ValueError(
                        f"segment {self.segment_id}: block {block_id} entered "
                        f"from outside the segment (edge {edge.source} -> {edge.target})"
                    )


@dataclass
class PartitionResult:
    """The outcome of partitioning one function with a given path bound.

    ``instrumentation_points`` follows the paper's accounting: two points per
    program segment (one before, one after).  ``measurements`` is the sum of
    the per-segment path counts, i.e. the number of measurement runs needed to
    observe every path of every segment at least once.
    """

    function_name: str
    path_bound: int
    segments: list[ProgramSegment] = field(default_factory=list)
    total_paths: int = 0

    @property
    def instrumentation_points(self) -> int:
        return 2 * len(self.segments)

    @property
    def measurements(self) -> int:
        return sum(segment.path_count for segment in self.segments)

    @property
    def fused_instrumentation_points(self) -> int:
        """Instrumentation points under the paper's "intelligent" scheme.

        Footnote 1 of the paper: when two consecutive instrumentation points
        coincide they can be fused, which brings ``ip`` down to roughly
        ``ip/2 + 1``.
        """
        return self.instrumentation_points // 2 + 1

    # ------------------------------------------------------------------ #
    def segment(self, segment_id: int) -> ProgramSegment:
        for segment in self.segments:
            if segment.segment_id == segment_id:
                return segment
        raise KeyError(f"no segment with id {segment_id}")

    def segment_of_block(self, block_id: int) -> ProgramSegment | None:
        """The segment containing *block_id* (``None`` for virtual blocks)."""
        for segment in self.segments:
            if segment.contains_block(block_id):
                return segment
        return None

    def covered_blocks(self) -> set[int]:
        covered: set[int] = set()
        for segment in self.segments:
            covered |= segment.block_ids
        return covered

    def segments_within(self, block_ids: set[int] | frozenset) -> list[ProgramSegment]:
        """Segments whose every block lies in *block_ids*.

        With the statically-unreachable block set of
        :mod:`repro.sa.feasibility` this yields the segments a sound static
        pass already knows can never execute -- they need no measurement and
        contribute nothing to the timing schema.
        """
        return [
            segment
            for segment in self.segments
            if segment.block_ids <= block_ids
        ]

    def validate(self, cfg: ControlFlowGraph) -> None:
        """Check global partition invariants.

        * every real block belongs to exactly one segment,
        * every segment satisfies the PS invariants,
        * ids are unique.
        """
        seen_ids: set[int] = set()
        block_owner: dict[int, int] = {}
        for segment in self.segments:
            if segment.segment_id in seen_ids:
                raise ValueError(f"duplicate segment id {segment.segment_id}")
            seen_ids.add(segment.segment_id)
            segment.validate(cfg)
            for block_id in segment.block_ids:
                if block_id in block_owner:
                    raise ValueError(
                        f"block {block_id} belongs to segments "
                        f"{block_owner[block_id]} and {segment.segment_id}"
                    )
                block_owner[block_id] = segment.segment_id
        real_ids = {block.block_id for block in cfg.real_blocks()}
        missing = real_ids - set(block_owner)
        if missing:
            raise ValueError(f"blocks not covered by any segment: {sorted(missing)}")
        extra = set(block_owner) - real_ids
        if extra:
            raise ValueError(f"segments cover non-existent/virtual blocks: {sorted(extra)}")

    def summary_row(self) -> dict[str, int]:
        """The (b, ip, m) row as reported in the paper's Table 1."""
        return {
            "bound": self.path_bound,
            "instrumentation_points": self.instrumentation_points,
            "measurements": self.measurements,
            "segments": len(self.segments),
        }
