"""CFG partitioning into program segments (the paper's Section 2)."""

from __future__ import annotations

from .astmap import AstBlockMap
from .general import (
    GeneralPartitionOptions,
    GeneralPartitioner,
    partition_function_general,
)
from .instrument import (
    InstrumentationPlan,
    InstrumentationPoint,
    PointKind,
    annotate_source,
    build_instrumentation_plan,
    segment_summary,
)
from .partitioner import (
    PaperPartitioner,
    PartitionError,
    PartitionOptions,
    measurement_effort_table,
    partition_function,
)
from .segment import PartitionResult, ProgramSegment, SegmentKind

__all__ = [
    "AstBlockMap",
    "GeneralPartitionOptions",
    "GeneralPartitioner",
    "partition_function_general",
    "InstrumentationPlan",
    "InstrumentationPoint",
    "PointKind",
    "annotate_source",
    "build_instrumentation_plan",
    "segment_summary",
    "PaperPartitioner",
    "PartitionError",
    "PartitionOptions",
    "measurement_effort_table",
    "partition_function",
    "PartitionResult",
    "ProgramSegment",
    "SegmentKind",
]
