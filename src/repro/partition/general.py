"""Generalised program-segment partitioning.

Section 2.3 of the paper reports that the authors' "first implementation of a
simple code partitioning algorithm was able to keep the number of
instrumentation points as low as 500" and that they were "currently extending
the CFG partitioning algorithm to produce a general PS partitioning ...
expected to result in improvements in the number of instrumentation points at
low measurement cycle costs".  Footnote 1 adds that fusing consecutive
instrumentation points ("intelligent instrumentation") roughly halves their
number.

:class:`GeneralPartitioner` implements that extension on top of the paper
algorithm:

* straight-line runs of basic blocks are fused into single
  :class:`~repro.partition.segment.SegmentKind.STRAIGHT_LINE` segments
  (1 path, 2 instrumentation points, 1 measurement) instead of being
  instrumented block by block;
* optionally, whole branching statements (condition block plus all
  alternatives) are considered as collapse candidates, which trades a few
  extra measurements for fewer instrumentation points;
* the result exposes the fused instrumentation-point count of footnote 1.

The ablation benchmark (``benchmarks/test_bench_figure3.py``) compares the
paper partitioner against this generalised one on the synthetic industrial
application.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.builder import build_cfg
from ..cfg.graph import ControlFlowGraph, EdgeKind
from ..cfg.paths import count_ast_paths
from ..minic.ast_nodes import CompoundStmt, FunctionDef, Stmt
from .astmap import AstBlockMap
from .partitioner import PartitionError, PartitionOptions
from .segment import PartitionResult, ProgramSegment, SegmentKind


@dataclass
class GeneralPartitionOptions(PartitionOptions):
    """Options of the generalised partitioner.

    ``fuse_straight_line``
        fuse maximal single-entry/single-exit chains of leftover blocks.
    ``collapse_whole_branches``
        also consider complete branching statements (condition included) as
        collapse candidates when their path count fits the bound.
    """

    fuse_straight_line: bool = True
    collapse_whole_branches: bool = True


class GeneralPartitioner:
    """The extended partitioner described in Section 2.3 of the paper."""

    def __init__(self, path_bound: int, options: GeneralPartitionOptions | None = None):
        if path_bound < 1:
            raise PartitionError("the path bound must be at least 1")
        self._bound = path_bound
        self._options = options or GeneralPartitionOptions()

    # ------------------------------------------------------------------ #
    def partition(
        self, function: FunctionDef, cfg: ControlFlowGraph | None = None
    ) -> PartitionResult:
        cfg = cfg if cfg is not None else build_cfg(function)
        ast_map = AstBlockMap.build(cfg)
        total_paths = count_ast_paths(
            function, default_loop_bound=self._options.default_loop_bound
        )
        result = PartitionResult(
            function_name=function.name, path_bound=self._bound, total_paths=total_paths
        )
        real_blocks = {block.block_id for block in cfg.real_blocks()}

        if total_paths <= self._bound:
            entry = cfg.successors(cfg.entry)[0].block_id
            result.segments = [
                ProgramSegment(
                    segment_id=0,
                    kind=SegmentKind.WHOLE_FUNCTION,
                    block_ids=frozenset(real_blocks),
                    entry_block=entry,
                    path_count=total_paths,
                    ast_node=function.body,
                    description=f"whole function {function.name}",
                )
            ]
            result.validate(cfg)
            return result

        region_segments: list[ProgramSegment] = []
        self._decompose(ast_map, function.body.statements, region_segments)

        claimed: set[int] = set()
        for segment in region_segments:
            claimed |= segment.block_ids
        leftovers = real_blocks - claimed

        segments = list(region_segments)
        if self._options.fuse_straight_line:
            segments.extend(self._fuse_chains(cfg, leftovers))
        else:
            for block_id in sorted(leftovers):
                segments.append(
                    ProgramSegment(
                        segment_id=0,
                        kind=SegmentKind.BASIC_BLOCK,
                        block_ids=frozenset({block_id}),
                        entry_block=block_id,
                        path_count=1,
                        description=f"basic block {cfg.block(block_id).label()}",
                    )
                )

        segments.sort(key=lambda s: min(s.block_ids))
        for index, segment in enumerate(segments):
            segment.segment_id = index
        result.segments = segments
        result.validate(cfg)
        return result

    # ------------------------------------------------------------------ #
    def _decompose(
        self,
        ast_map: AstBlockMap,
        statements: list[Stmt],
        out_segments: list[ProgramSegment],
    ) -> None:
        for stmt in statements:
            if isinstance(stmt, CompoundStmt):
                self._decompose(ast_map, stmt.statements, out_segments)
                continue
            if not AstBlockMap.is_branching(stmt):
                continue
            paths = count_ast_paths(
                stmt, default_loop_bound=self._options.default_loop_bound
            )
            if self._options.collapse_whole_branches and 1 < paths <= self._bound:
                blocks = ast_map.blocks_of_subtree(stmt)
                if blocks and self._is_single_entry(ast_map.cfg, blocks):
                    out_segments.append(
                        self._region(ast_map.cfg, blocks, paths, stmt, "whole branch")
                    )
                    continue
            for label, alternative in ast_map.alternatives(stmt):
                alt_paths = count_ast_paths(
                    alternative,  # type: ignore[arg-type]
                    default_loop_bound=self._options.default_loop_bound,
                )
                blocks = ast_map.blocks_of_subtree(alternative)
                if not blocks:
                    continue
                collapsible = alt_paths > 1 or self._options.fuse_straight_line
                if alt_paths <= self._bound and collapsible:
                    if self._is_single_entry(ast_map.cfg, blocks):
                        out_segments.append(
                            self._region(ast_map.cfg, blocks, alt_paths, alternative, label)
                        )
                        continue
                self._decompose(
                    ast_map, AstBlockMap.nested_statements(alternative), out_segments
                )

    def _region(
        self,
        cfg: ControlFlowGraph,
        blocks: set[int],
        paths: int,
        ast_node,
        label: str,
    ) -> ProgramSegment:
        entry = self._entry_block(cfg, blocks)
        kind = SegmentKind.REGION if paths > 1 else SegmentKind.STRAIGHT_LINE
        return ProgramSegment(
            segment_id=0,
            kind=kind,
            block_ids=frozenset(blocks),
            entry_block=entry,
            path_count=paths,
            ast_node=ast_node,
            description=label,
        )

    # ------------------------------------------------------------------ #
    # straight-line chain fusion
    # ------------------------------------------------------------------ #
    def _fuse_chains(
        self, cfg: ControlFlowGraph, leftovers: set[int]
    ) -> list[ProgramSegment]:
        """Group leftover blocks into maximal single-entry chains."""
        segments: list[ProgramSegment] = []
        remaining = set(leftovers)
        for block_id in sorted(leftovers):
            if block_id not in remaining:
                continue
            chain = self._grow_chain(cfg, block_id, remaining)
            for member in chain:
                remaining.discard(member)
            if len(chain) == 1:
                kind = SegmentKind.BASIC_BLOCK
                description = f"basic block {cfg.block(chain[0]).label()}"
            else:
                kind = SegmentKind.STRAIGHT_LINE
                description = (
                    f"straight-line chain {cfg.block(chain[0]).label()}"
                    f"..{cfg.block(chain[-1]).label()}"
                )
            segments.append(
                ProgramSegment(
                    segment_id=0,
                    kind=kind,
                    block_ids=frozenset(chain),
                    entry_block=chain[0],
                    path_count=1,
                    description=description,
                )
            )
        return segments

    def _grow_chain(
        self, cfg: ControlFlowGraph, start: int, available: set[int]
    ) -> list[int]:
        """Maximal straight-line chain of available blocks containing *start*."""
        chain = [start]
        # extend backwards
        current = start
        while True:
            in_edges = [e for e in cfg.in_edges(current) if e.kind is not EdgeKind.BACK]
            if len(in_edges) != 1:
                break
            pred = in_edges[0].source
            if pred not in available or pred in chain:
                break
            out_edges = [e for e in cfg.out_edges(pred) if e.kind is not EdgeKind.BACK]
            if len(out_edges) != 1:
                break
            chain.insert(0, pred)
            current = pred
        # extend forwards
        current = start
        while True:
            out_edges = [e for e in cfg.out_edges(current) if e.kind is not EdgeKind.BACK]
            if len(out_edges) != 1:
                break
            succ = out_edges[0].target
            if succ not in available or succ in chain:
                break
            in_edges = [e for e in cfg.in_edges(succ) if e.kind is not EdgeKind.BACK]
            if len(in_edges) != 1:
                break
            chain.append(succ)
            current = succ
        return chain

    # ------------------------------------------------------------------ #
    @staticmethod
    def _is_single_entry(cfg: ControlFlowGraph, blocks: set[int]) -> bool:
        entries = [
            block_id
            for block_id in blocks
            if any(edge.source not in blocks for edge in cfg.in_edges(block_id))
        ]
        return len(entries) <= 1

    @staticmethod
    def _entry_block(cfg: ControlFlowGraph, blocks: set[int]) -> int:
        entries = sorted(
            block_id
            for block_id in blocks
            if any(edge.source not in blocks for edge in cfg.in_edges(block_id))
        )
        return entries[0] if entries else min(blocks)


def partition_function_general(
    function: FunctionDef,
    path_bound: int,
    cfg: ControlFlowGraph | None = None,
    options: GeneralPartitionOptions | None = None,
) -> PartitionResult:
    """Partition *function* with the generalised algorithm."""
    return GeneralPartitioner(path_bound, options).partition(function, cfg)
