"""The paper's hierarchical CFG partitioning algorithm (Section 2.2).

The algorithm, as described in the paper and reverse-engineered from its
Table 1 (see DESIGN.md §5):

1. The whole function is the initial program segment.  If its path count is
   at most the path bound *b*, it is measured end to end: two instrumentation
   points, one measurement per path.
2. Otherwise the segment is decomposed along the abstract syntax tree:

   * condition blocks and straight-line blocks fall back to basic-block
     granularity (one segment each);
   * every *branch alternative* (then/else branch, switch case body, loop
     body) that itself contains branching (more than one internal path) is a
     candidate sub-segment: it is measured as a whole when its path count is
     ≤ *b*, and recursively decomposed when it is not.

   Straight-line alternatives are *not* fused -- the paper's prototype keeps
   them at basic-block granularity (its footnote about "intelligent
   instrumentation" being future work confirms this); the generalised
   partitioner in :mod:`repro.partition.general` adds that fusion.

The entry point is :class:`PaperPartitioner` (or the convenience function
:func:`partition_function`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.builder import build_cfg
from ..cfg.graph import ControlFlowGraph
from ..cfg.paths import DEFAULT_LOOP_BOUND, count_ast_paths
from ..minic.ast_nodes import CompoundStmt, FunctionDef, Node, Stmt
from ..minic.pretty import PrettyPrinter
from .astmap import AstBlockMap
from .segment import PartitionResult, ProgramSegment, SegmentKind


class PartitionError(Exception):
    """Raised when a function cannot be partitioned."""


@dataclass
class PartitionOptions:
    """Tunable knobs of the partitioning process.

    ``default_loop_bound`` feeds the path counter for loops without a
    ``#pragma loopbound`` annotation (the paper's workloads are loop free,
    generated state machines use bounded iteration).
    """

    default_loop_bound: int | None = DEFAULT_LOOP_BOUND


class PaperPartitioner:
    """Partition a function's CFG into program segments for a path bound."""

    def __init__(self, path_bound: int, options: PartitionOptions | None = None):
        if path_bound < 1:
            raise PartitionError("the path bound must be at least 1")
        self._bound = path_bound
        self._options = options or PartitionOptions()
        self._printer = PrettyPrinter()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def partition(
        self, function: FunctionDef, cfg: ControlFlowGraph | None = None
    ) -> PartitionResult:
        """Partition *function* and return the resulting segments.

        ``cfg`` may be passed when the caller already built it; otherwise it
        is constructed here.
        """
        cfg = cfg if cfg is not None else build_cfg(function)
        if cfg.function_name != function.name:
            raise PartitionError(
                f"CFG belongs to {cfg.function_name!r}, not {function.name!r}"
            )
        ast_map = AstBlockMap.build(cfg)
        total_paths = count_ast_paths(
            function, default_loop_bound=self._options.default_loop_bound
        )
        result = PartitionResult(
            function_name=function.name,
            path_bound=self._bound,
            total_paths=total_paths,
        )

        real_blocks = {block.block_id for block in cfg.real_blocks()}
        if total_paths <= self._bound:
            # the whole function fits under the bound: measure end to end
            entry_block = self._function_entry_block(cfg)
            result.segments.append(
                ProgramSegment(
                    segment_id=0,
                    kind=SegmentKind.WHOLE_FUNCTION,
                    block_ids=frozenset(real_blocks),
                    entry_block=entry_block,
                    path_count=total_paths,
                    ast_node=function.body,
                    description=f"whole function {function.name}",
                )
            )
            result.validate(cfg)
            return result

        region_segments: list[ProgramSegment] = []
        self._decompose_statements(
            ast_map, function.body.statements, region_segments
        )

        # every real block not claimed by a region segment is measured as a
        # stand-alone basic block
        claimed: set[int] = set()
        for segment in region_segments:
            claimed |= segment.block_ids
        leftovers = sorted(real_blocks - claimed)
        segments: list[ProgramSegment] = []
        for block_id in leftovers:
            segments.append(
                ProgramSegment(
                    segment_id=0,  # re-numbered below
                    kind=SegmentKind.BASIC_BLOCK,
                    block_ids=frozenset({block_id}),
                    entry_block=block_id,
                    path_count=1,
                    ast_node=None,
                    description=f"basic block {cfg.block(block_id).label()}",
                )
            )
        segments.extend(region_segments)
        segments.sort(key=lambda s: min(s.block_ids))
        for index, segment in enumerate(segments):
            segment.segment_id = index
        result.segments = segments
        result.validate(cfg)
        return result

    # ------------------------------------------------------------------ #
    # decomposition along the AST
    # ------------------------------------------------------------------ #
    def _decompose_statements(
        self,
        ast_map: AstBlockMap,
        statements: list[Stmt],
        out_segments: list[ProgramSegment],
    ) -> None:
        """Process the top level of a region: find candidate sub-segments."""
        for stmt in statements:
            if isinstance(stmt, CompoundStmt):
                self._decompose_statements(ast_map, stmt.statements, out_segments)
                continue
            if not AstBlockMap.is_branching(stmt):
                continue  # straight-line code stays at basic-block granularity
            for label, alternative in ast_map.alternatives(stmt):
                self._handle_alternative(ast_map, stmt, label, alternative, out_segments)

    def _handle_alternative(
        self,
        ast_map: AstBlockMap,
        branch_stmt: Stmt,
        label: str,
        alternative: Node,
        out_segments: list[ProgramSegment],
    ) -> None:
        paths = count_ast_paths(
            alternative,  # type: ignore[arg-type]
            default_loop_bound=self._options.default_loop_bound,
        )
        if paths <= 1:
            # straight-line alternative: constituent blocks stay individual
            return
        if paths <= self._bound:
            blocks = ast_map.blocks_of_subtree(alternative)
            if not blocks:
                return
            segment = self._make_region_segment(
                ast_map.cfg, blocks, paths, alternative,
                f"{self._describe(branch_stmt)} {label}",
            )
            out_segments.append(segment)
            return
        # too many paths: decompose the alternative further
        inner = AstBlockMap.nested_statements(alternative)
        self._decompose_statements(ast_map, inner, out_segments)

    def _make_region_segment(
        self,
        cfg: ControlFlowGraph,
        blocks: set[int],
        paths: int,
        ast_node: Node,
        description: str,
    ) -> ProgramSegment:
        entry_block = self._region_entry_block(cfg, blocks)
        return ProgramSegment(
            segment_id=0,
            kind=SegmentKind.REGION,
            block_ids=frozenset(blocks),
            entry_block=entry_block,
            path_count=paths,
            ast_node=ast_node,
            description=description,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _region_entry_block(cfg: ControlFlowGraph, blocks: set[int]) -> int:
        """The unique block of *blocks* that is entered from outside."""
        entries = sorted(
            block_id
            for block_id in blocks
            if any(edge.source not in blocks for edge in cfg.in_edges(block_id))
        )
        if not entries:
            # fully self-contained region (should not happen for reachable code)
            return min(blocks)
        if len(entries) > 1:
            raise PartitionError(
                f"region {sorted(blocks)} has multiple entry blocks {entries}; "
                "it is not a valid program segment"
            )
        return entries[0]

    @staticmethod
    def _function_entry_block(cfg: ControlFlowGraph) -> int:
        successors = cfg.successors(cfg.entry)
        if not successors:
            raise PartitionError("function has an empty CFG")
        return successors[0].block_id

    def _describe(self, stmt: Stmt) -> str:
        line = stmt.location.line
        name = type(stmt).__name__.replace("Stmt", "").lower()
        return f"{name}@line{line}" if line else name


def partition_function(
    function: FunctionDef,
    path_bound: int,
    cfg: ControlFlowGraph | None = None,
    options: PartitionOptions | None = None,
) -> PartitionResult:
    """Partition *function* under *path_bound* (convenience wrapper)."""
    return PaperPartitioner(path_bound, options).partition(function, cfg)


def measurement_effort_table(
    function: FunctionDef,
    bounds: list[int],
    cfg: ControlFlowGraph | None = None,
    options: PartitionOptions | None = None,
) -> list[dict[str, int]]:
    """Reproduce a Table-1-style sweep: one (b, ip, m) row per bound.

    The CFG is built once and reused across all bounds.
    """
    cfg = cfg if cfg is not None else build_cfg(function)
    rows = []
    for bound in bounds:
        result = PaperPartitioner(bound, options).partition(function, cfg)
        rows.append(result.summary_row())
    return rows
