"""Instrumentation-point placement.

After partitioning, "instrumentation points are introduced before and after
the program segments" (Section 2.1).  On the real target the points start and
stop the HCS12 cycle-counter register; in this reproduction they are hooks the
interpreter (:mod:`repro.hw.interpreter`) fires when execution enters specific
CFG blocks.

:class:`InstrumentationPlan` lists every instrumentation point, knows which
block-entry events trigger which points, and can render an annotated source
listing that shows where the points sit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from .segment import PartitionResult


class PointKind(enum.Enum):
    """Whether an instrumentation point starts or stops a segment measurement."""

    ENTRY = "entry"
    EXIT = "exit"


@dataclass(frozen=True)
class InstrumentationPoint:
    """A single instrumentation point.

    ``trigger_block`` is the CFG block whose *entry* fires the point:

    * for an ENTRY point this is the segment's entry block (the cycle counter
      is read just before the block starts executing);
    * for an EXIT point it is the block an exit edge leads to (the counter is
      read when control has left the segment).  ``None`` means the segment
      exits the function, in which case the function-return event fires it.
    """

    point_id: int
    kind: PointKind
    segment_id: int
    trigger_block: int | None


@dataclass
class InstrumentationPlan:
    """All instrumentation points of one partitioned function."""

    function_name: str
    path_bound: int
    points: list[InstrumentationPoint] = field(default_factory=list)
    #: block id -> points fired when that block is entered
    triggers: dict[int, list[InstrumentationPoint]] = field(default_factory=dict)
    #: points fired when the function returns
    end_of_function_points: list[InstrumentationPoint] = field(default_factory=list)

    @property
    def point_count(self) -> int:
        return len(self.points)

    def points_for_segment(self, segment_id: int) -> list[InstrumentationPoint]:
        return [p for p in self.points if p.segment_id == segment_id]

    def entry_point(self, segment_id: int) -> InstrumentationPoint:
        for point in self.points:
            if point.segment_id == segment_id and point.kind is PointKind.ENTRY:
                return point
        raise KeyError(f"segment {segment_id} has no entry point")


def build_instrumentation_plan(
    result: PartitionResult, cfg: ControlFlowGraph
) -> InstrumentationPlan:
    """Place instrumentation points before and after every segment.

    The plan mirrors the paper's counting: every segment receives exactly one
    ENTRY point and one logical EXIT point.  A segment with several exit edges
    still counts a single exit instrumentation point (the same counter-read
    instruction is duplicated on each exit edge of the object code), so
    ``plan.point_count == result.instrumentation_points``.
    """
    plan = InstrumentationPlan(
        function_name=result.function_name, path_bound=result.path_bound
    )
    next_id = 0
    for segment in result.segments:
        entry_point = InstrumentationPoint(
            point_id=next_id,
            kind=PointKind.ENTRY,
            segment_id=segment.segment_id,
            trigger_block=segment.entry_block,
        )
        next_id += 1
        plan.points.append(entry_point)
        plan.triggers.setdefault(segment.entry_block, []).append(entry_point)

        exit_targets = sorted(
            {edge.target for edge in segment.exit_edges(cfg)}
        )
        exit_point = InstrumentationPoint(
            point_id=next_id,
            kind=PointKind.EXIT,
            segment_id=segment.segment_id,
            trigger_block=exit_targets[0] if exit_targets else None,
        )
        next_id += 1
        plan.points.append(exit_point)
        fires_at_end = False
        for target in exit_targets:
            if target == cfg.exit.block_id:
                fires_at_end = True
                continue
            plan.triggers.setdefault(target, []).append(exit_point)
        if fires_at_end or not exit_targets:
            plan.end_of_function_points.append(exit_point)
    return plan


def annotate_source(
    result: PartitionResult, cfg: ControlFlowGraph, source: str
) -> str:
    """Produce a human-readable instrumented listing.

    Each source line that starts a segment's entry block is prefixed with a
    ``/* IP<id> begin segment k */`` marker and segment summaries are appended
    at the end -- the textual analogue of the instrumented executable the
    paper uploads to the evaluation board.
    """
    line_markers: dict[int, list[str]] = {}
    for segment in result.segments:
        entry_block = cfg.block(segment.entry_block)
        line = entry_block.source_line
        if line is None:
            continue
        line_markers.setdefault(line, []).append(
            f"/* IP begin segment {segment.segment_id} "
            f"({segment.kind.value}, {segment.path_count} path(s)) */"
        )

    output: list[str] = []
    for number, text in enumerate(source.splitlines(), start=1):
        for marker in line_markers.get(number, ()):
            indent = text[: len(text) - len(text.lstrip())]
            output.append(f"{indent}{marker}")
        output.append(text)
    output.append("")
    output.append(f"/* {len(result.segments)} program segments, "
                  f"{result.instrumentation_points} instrumentation points, "
                  f"{result.measurements} measurements (path bound "
                  f"{result.path_bound}) */")
    for segment in result.segments:
        blocks = ",".join(str(b) for b in sorted(segment.block_ids))
        output.append(
            f"/*   segment {segment.segment_id}: {segment.kind.value:>14} "
            f"blocks [{blocks}] paths {segment.path_count} "
            f"{segment.description} */"
        )
    return "\n".join(output) + "\n"


def segment_summary(result: PartitionResult) -> list[dict[str, object]]:
    """Tabular summary of a partition result (used by reports and the CLI)."""
    rows: list[dict[str, object]] = []
    for segment in result.segments:
        rows.append(
            {
                "segment": segment.segment_id,
                "kind": segment.kind.value,
                "blocks": sorted(segment.block_ids),
                "paths": segment.path_count,
                "description": segment.description,
            }
        )
    return rows

