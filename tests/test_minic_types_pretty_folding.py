"""Unit tests for the type system, the pretty printer and constant folding."""

from __future__ import annotations

import pytest

from repro.minic import parse_and_analyze, parse_program, print_program
from repro.minic.ast_nodes import BinaryOp, BoolLiteral, Identifier, IntLiteral, UnaryOp
from repro.minic.folding import (
    apply_binary,
    apply_unary,
    assigned_variables,
    expression_variables,
    expression_size,
    fold_expr,
    has_calls,
)
from repro.minic.parser import parse_expression
from repro.minic.pretty import print_expression, print_statement
from repro.minic.types import (
    BOOL,
    INT8,
    INT16,
    UINT8,
    UINT16,
    CType,
    IntRange,
    common_type,
    lookup_type,
)


class TestTypes:
    def test_signed_ranges(self):
        assert INT8.min_value == -128 and INT8.max_value == 127
        assert INT16.min_value == -32768 and INT16.max_value == 32767

    def test_unsigned_ranges(self):
        assert UINT8.min_value == 0 and UINT8.max_value == 255
        assert UINT16.max_value == 65535

    def test_bool_range(self):
        assert BOOL.min_value == 0 and BOOL.max_value == 1

    def test_wrap_signed_overflow(self):
        assert INT8.wrap(130) == -126
        assert INT8.wrap(-129) == 127

    def test_wrap_unsigned_overflow(self):
        assert UINT8.wrap(260) == 4
        assert UINT8.wrap(-1) == 255

    def test_wrap_bool_normalises(self):
        assert BOOL.wrap(17) == 1
        assert BOOL.wrap(0) == 0

    def test_int_range_bits(self):
        assert IntRange(0, 1).bits() == 1
        assert IntRange(0, 255).bits() == 8
        assert IntRange(-128, 127).bits() == 8
        assert IntRange(0, 8).bits() == 4

    def test_int_range_operations(self):
        r = IntRange(0, 10)
        assert 5 in r and 11 not in r
        assert r.clamp(99) == 10 and r.clamp(-3) == 0
        assert r.intersect(IntRange(5, 20)) == IntRange(5, 10)
        assert r.intersect(IntRange(20, 30)) is None
        assert r.union(IntRange(-5, 2)) == IntRange(-5, 10)

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            IntRange(3, 1)

    def test_lookup_type_spellings(self):
        assert lookup_type("unsigned char") is UINT8
        assert lookup_type("Int16") is INT16
        assert lookup_type("no_such_type") is None

    def test_common_type_promotes_to_at_least_16_bits(self):
        assert common_type(INT8, INT8).bits == 16
        assert common_type(UINT16, INT16) is UINT16

    def test_void_has_no_values(self):
        void = lookup_type("void")
        with pytest.raises(TypeError):
            _ = void.min_value
        with pytest.raises(TypeError):
            void.wrap(1)

    def test_custom_type_construction(self):
        nibble = CType("Nibble", 4, signed=False)
        assert nibble.max_value == 15
        assert nibble.wrap(17) == 1


class TestPrettyPrinterRoundTrip:
    SOURCES = [
        "void f(void) { int x; x = 1 + 2 * 3; }",
        "int g(int a) { if (a > 0) { return a; } else { return 0 - a; } }",
        "void h(void) { int i; i = 0; #pragma loopbound(3)\nwhile (i < 3) { i = i + 1; } }",
        "int s; void k(void) { switch (s) { case 1: s = 2; break; default: s = 0; break; } }",
        "void m(void) { int i; for (i = 0; i < 5; i = i + 1) { helper(i); } }",
        "#pragma input u\n#pragma range u 0 7\nint u; void n(void) { if (u == 3) { act(); } }",
    ]

    @pytest.mark.parametrize("source", SOURCES)
    def test_round_trip_preserves_structure(self, source):
        """parse -> print -> parse yields a program that prints identically."""
        first = parse_program(source)
        printed = print_program(first)
        second = parse_program(printed)
        assert print_program(second) == printed

    def test_round_trip_preserves_semantics(self, figure1):
        printed = print_program(figure1.program)
        reparsed = parse_and_analyze(printed)
        assert [f.name for f in reparsed.program.functions] == ["main"]
        assert reparsed.program.input_variables == ["i"]

    def test_statement_printing(self):
        stmt = parse_program("void f(void) { if (1) { x(); } }").functions[0].body.statements[0]
        text = print_statement(stmt)
        assert text.startswith("if (1)")

    def test_expression_printing_parenthesises(self):
        assert print_expression(parse_expression("a + b * c")) == "(a + (b * c))"


class TestConstantFolding:
    def test_fold_arithmetic(self):
        expr = fold_expr(parse_expression("2 + 3 * 4"))
        assert isinstance(expr, IntLiteral) and expr.value == 14

    def test_fold_relational_to_bool(self):
        expr = fold_expr(parse_expression("3 < 5"))
        assert isinstance(expr, (IntLiteral, BoolLiteral))

    def test_fold_preserves_variables(self):
        expr = fold_expr(parse_expression("x + 0"))
        assert isinstance(expr, Identifier)

    def test_fold_multiplication_by_one(self):
        expr = fold_expr(parse_expression("1 * y"))
        assert isinstance(expr, Identifier) and expr.name == "y"

    def test_fold_short_circuit_and_false(self):
        expr = fold_expr(parse_expression("0 && x"))
        assert isinstance(expr, (IntLiteral, BoolLiteral))

    def test_fold_ternary(self):
        expr = fold_expr(parse_expression("1 ? a : b"))
        assert isinstance(expr, Identifier) and expr.name == "a"

    def test_fold_division_by_zero_kept_symbolic(self):
        expr = fold_expr(parse_expression("5 / 0"))
        assert isinstance(expr, BinaryOp)

    def test_fold_does_not_mutate_original(self):
        original = parse_expression("1 + 2")
        fold_expr(original)
        assert isinstance(original, BinaryOp)

    def test_apply_binary_c_division_truncates_toward_zero(self):
        assert apply_binary("/", -7, 2) == -3
        assert apply_binary("%", -7, 2) == -1

    def test_apply_binary_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            apply_binary("/", 1, 0)

    def test_apply_unary(self):
        assert apply_unary("!", 0) == 1
        assert apply_unary("-", 5) == -5
        assert apply_unary("~", 0) == -1

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            apply_binary("**", 2, 3)


class TestExpressionQueries:
    def test_expression_variables_excludes_assignment_target(self):
        expr = parse_expression("x = y + z")
        assert expression_variables(expr) == {"y", "z"}

    def test_assigned_variables(self):
        expr = parse_expression("x = y = 1")
        assert assigned_variables(expr) == {"x", "y"}

    def test_has_calls(self):
        assert has_calls(parse_expression("f(x) + 1"))
        assert not has_calls(parse_expression("x + 1"))

    def test_expression_size(self):
        assert expression_size(parse_expression("a")) == 1
        assert expression_size(parse_expression("a + b")) == 3

    def test_unary_not_detected(self):
        expr = parse_expression("!done")
        assert isinstance(expr, UnaryOp)
        assert expression_variables(expr) == {"done"}
