"""Tests of the observability layer (:mod:`repro.obs`).

All tests carry the ``obs`` marker (registered in ``pytest.ini``) and
stay bounded: tiny mini-C workloads under the quick hybrid options, at
most two pool workers, in-process servers on ephemeral loopback ports.
The invariants under test are the tentpole promises of the layer:

* spans form one connected tree under a single ``trace_id``, including
  across the process-pool boundary (the serialisable ``SpanContext``
  handshake);
* tracing -- disabled *or* recording -- never changes an analysis
  result: ``result_payload()`` stays bit-identical to an untraced run;
* ``GET /v1/metrics`` serves Prometheus text with histogram timers;
* quarantines, fired faults and server 5xx responses leave a flight
  dump in ``diagnostics/`` whose ``trace_id`` is echoed in the project
  report (resp. the 503 body).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs, perf
from repro.pipeline import AnalyzerConfig
from repro.project import Project, ProjectScheduler, ResultCache
from repro.resilience import FaultPlan
from repro.service import AnalysisServer, ServiceClient
from repro.testgen import HybridOptions

pytestmark = pytest.mark.obs

QUICK_HYBRID = HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1)

#: two call-independent functions -> schedulable in one two-job wave
PAIR = {
    "unit": """
int left(int x) { if (x > 3) { x = x - 1; } return x; }
int right(int y) { if (y > 1) { y = y + 2; } return y; }
"""
}

TINY = {"unit": "int only(int x) { if (x > 1) { x = x - 1; } return x; }"}


def quick_config(**overrides) -> AnalyzerConfig:
    options = dict(
        path_bound=2,
        hybrid=QUICK_HYBRID,
        extra_random_vectors=5,
        exhaustive_limit=None,
    )
    options.update(overrides)
    return AnalyzerConfig(**options)


def payloads(report) -> list[dict]:
    return [summary.result_payload() for summary in report.functions]


# ---------------------------------------------------------------------- #
# tracer primitives
# ---------------------------------------------------------------------- #
def test_span_is_noop_without_tracer():
    assert obs.active_tracer() is None
    with obs.span("unit.test", answer=42) as context:
        assert context is None
    assert obs.current_context() is None


def test_disabled_tracer_records_nothing():
    tracer = obs.Tracer(enabled=False)
    with obs.using_tracer(tracer):
        with obs.span("unit.test") as context:
            assert context is None
    assert len(tracer) == 0


def test_nested_spans_share_a_trace_and_link_parents():
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        with obs.span("unit.outer") as outer:
            with obs.span("unit.inner", depth=1) as inner:
                assert inner.trace_id == outer.trace_id
    events = {event["name"]: event for event in tracer.events()}
    assert events["unit.outer"]["parent_id"] is None
    assert events["unit.inner"]["parent_id"] == outer.span_id
    assert events["unit.inner"]["attrs"] == {"depth": 1}
    assert all(event["dur_us"] >= 0 for event in events.values())
    assert tracer.last_trace_id == outer.trace_id


def test_exception_is_recorded_on_the_span():
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        with pytest.raises(ValueError):
            with obs.span("unit.boom"):
                raise ValueError("expected")
    (event,) = tracer.events()
    assert event["error"]


def test_ring_tracer_keeps_only_the_newest_events():
    tracer = obs.Tracer(max_events=4)
    with obs.using_tracer(tracer):
        for index in range(10):
            with obs.span("unit.tick", index=index):
                pass
    assert len(tracer) == 4
    kept = [event["attrs"]["index"] for event in tracer.events()]
    assert kept == [6, 7, 8, 9]


def test_span_context_roundtrip_and_rejection():
    context = obs.SpanContext(trace_id="a" * 16, span_id="1-2f")
    assert obs.SpanContext.from_dict(context.to_dict()) == context
    assert obs.SpanContext.from_dict(None) is None
    assert obs.SpanContext.from_dict({"trace_id": "only-half"}) is None


def test_merge_reattaches_cross_process_events():
    parent = obs.Tracer()
    with obs.using_tracer(parent):
        with obs.span("unit.root") as root:
            handshake = root.to_dict()
    # simulate the pool worker: a private tracer seeded from the wire dict
    worker = obs.Tracer()
    seed = obs.SpanContext.from_dict(handshake)
    with obs.using_tracer(worker, seed):
        with obs.span("unit.remote") as remote:
            assert remote.trace_id == root.trace_id
    parent.merge(worker.events())
    summary = obs.summarize(parent.events())
    assert summary["spans"] == 2
    assert list(summary["traces"]) == [root.trace_id]
    assert summary["orphans"] == 0


def test_jsonl_and_chrome_exports_roundtrip(tmp_path):
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        with obs.span("unit.outer"):
            with obs.span("unit.inner"):
                pass
    jsonl = tmp_path / "trace.jsonl"
    chrome = tmp_path / "trace.json"
    tracer.write_jsonl(jsonl)
    tracer.write_chrome(chrome)

    header = json.loads(jsonl.read_text().splitlines()[0])
    assert header["schema"] == obs.TRACE_SCHEMA
    chrome_events = json.loads(chrome.read_text())["traceEvents"]
    assert {event["ph"] for event in chrome_events} == {"X"}

    for path in (jsonl, chrome):
        events = obs.read_trace_file(path)
        summary = obs.summarize(events)
        assert summary["spans"] == 2
        assert summary["roots"] == 1
        assert summary["orphans"] == 0
        assert set(summary["by_name"]) == {"unit.outer", "unit.inner"}


# ---------------------------------------------------------------------- #
# metrics exposition
# ---------------------------------------------------------------------- #
def test_prometheus_text_renders_counters_and_histograms():
    registry = perf.PerfRegistry()
    with perf.using_registry(registry):
        perf.add("unit.widgets", 3)
        with perf.timed("unit.step"):
            pass
    text = obs.prometheus_text(registry.report())
    assert "repro_unit_widgets_total 3" in text
    assert 'repro_unit_step_seconds_bucket{le="+Inf"} 1' in text
    assert "repro_unit_step_seconds_count 1" in text
    assert "repro_unit_step_seconds_sum" in text
    # bucket counts are cumulative: every finite bound's count <= +Inf's
    buckets = [
        line
        for line in text.splitlines()
        if line.startswith("repro_unit_step_seconds_bucket")
    ]
    assert len(buckets) == len(perf.HISTOGRAM_BOUNDS) + 1


def test_prometheus_text_extra_counters_with_labels():
    registry = perf.PerfRegistry()
    text = obs.prometheus_text(
        registry.report(),
        extra_counters=[
            ("service.requests.by_endpoint", {"endpoint": "GET healthz"}, 2),
            ("service.requests.injected", None, 0),
        ],
    )
    assert (
        'repro_service_requests_by_endpoint_total{endpoint="GET healthz"} 2'
        in text
    )
    assert "repro_service_requests_injected_total 0" in text


# ---------------------------------------------------------------------- #
# flight recorder
# ---------------------------------------------------------------------- #
def test_flight_recorder_dumps_the_span_ring(tmp_path):
    tracer = obs.Tracer(max_events=8)
    with obs.using_tracer(tracer):
        with obs.span("unit.work"):
            pass
    recorder = obs.FlightRecorder(tmp_path / obs.DIAGNOSTICS_DIR)
    record = recorder.dump("unit-test", tracer=tracer, detail="boom")
    assert record is not None
    assert record["trace_id"] == tracer.last_trace_id
    dumped = json.loads(open(record["path"], encoding="utf-8").read())
    assert dumped["schema"] == obs.FLIGHT_SCHEMA
    assert dumped["trigger"] == "unit-test"
    assert dumped["detail"] == "boom"
    assert dumped["events"], "the span ring must be captured in the dump"


def test_flight_recorder_caps_dump_count(tmp_path):
    recorder = obs.FlightRecorder(tmp_path / "diag", max_dumps=2)
    first = recorder.dump("one")
    second = recorder.dump("two")
    third = recorder.dump("three")
    assert first is not None and second is not None
    assert third is None, "past the cap the recorder must drop, not grow"
    assert recorder.dropped == 1


# ---------------------------------------------------------------------- #
# scheduler integration: propagation and bit-identity
# ---------------------------------------------------------------------- #
@pytest.mark.project
def test_spans_propagate_across_pool_workers():
    project = Project.from_sources(PAIR)
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        report = ProjectScheduler(
            project, config=quick_config(), workers=2
        ).run()
    summary = obs.summarize(tracer.events())
    assert report.trace_id is not None
    assert list(summary["traces"]) == [report.trace_id]
    assert summary["orphans"] == 0, "pool-worker spans must re-attach"
    assert summary["by_name"]["project.run"]["spans"] == 1
    job_events = [
        event for event in tracer.events() if event["name"] == "project.job"
    ]
    assert len(job_events) == 2
    # both jobs hang off the run tree whether the pool was used or the
    # scheduler fell back to serial execution
    assert all(event["parent_id"] is not None for event in job_events)
    assert report.trace_spans == len(tracer)


def test_tracing_on_off_results_are_bit_identical():
    project = Project.from_sources(PAIR)
    untraced = ProjectScheduler(project, config=quick_config()).run()
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        traced = ProjectScheduler(project, config=quick_config()).run()
    with obs.using_tracer(obs.Tracer(enabled=False)):
        disabled = ProjectScheduler(project, config=quick_config()).run()
    assert payloads(untraced) == payloads(traced)
    assert payloads(untraced) == payloads(disabled)
    assert untraced.trace_id is None
    assert disabled.trace_id is None
    assert traced.trace_id is not None
    # the report's only delta is its observability section
    assert traced.to_dict()["observability"]["trace_spans"] == len(tracer)


def test_analyzer_and_mc_stages_emit_spans():
    tracer = obs.Tracer()
    with obs.using_tracer(tracer):
        ProjectScheduler(Project.from_sources(TINY), config=quick_config()).run()
    names = {event["name"] for event in tracer.events()}
    # mc.plan/mc.solve only appear when the bound needs model checking,
    # which the tiny workload does not -- the bench's connected-trace
    # check covers those on the call-chain workload
    assert {"analyze.partition", "analyze.testgen", "analyze.measure",
            "analyze.schema"} <= names


# ---------------------------------------------------------------------- #
# flight dumps from the scheduler
# ---------------------------------------------------------------------- #
@pytest.mark.chaos
def test_injected_fault_leaves_a_flight_dump_in_the_report(tmp_path):
    plan = FaultPlan.from_args(["job.execute:raise@1+"], seed=7)
    cache_root = tmp_path / "cache"
    report = ProjectScheduler(
        Project.from_sources(TINY),
        config=quick_config(),
        cache=ResultCache(cache_root),
        fault_plan=plan,
    ).run()
    assert report.quarantined_functions, "every execution raises -> quarantine"
    assert report.flight_dumps, "a quarantine must leave a flight dump"
    record = report.flight_dumps[0]
    assert record["trigger"].startswith("quarantine-")
    assert record["trace_id"] == report.trace_id, (
        "the dump must carry the trace of the run that crashed"
    )
    dump = json.loads(open(record["path"], encoding="utf-8").read())
    assert dump["schema"] == obs.FLIGHT_SCHEMA
    assert dump["events"], "the chaos auto-armed ring must capture spans"
    # the dump is surfaced both in diagnostics/ and in the report dict
    assert str(cache_root / obs.DIAGNOSTICS_DIR) in record["path"]
    resilience = report.to_dict()["resilience"]
    assert resilience["flight_dumps"][0]["trace_id"] == report.trace_id
    assert report.to_dict()["observability"]["flight_dumps"] == 1


# ---------------------------------------------------------------------- #
# service integration: /v1/metrics and 5xx trace echo
# ---------------------------------------------------------------------- #
@pytest.mark.service
def test_metrics_endpoint_serves_prometheus_histograms(tmp_path):
    with AnalysisServer(
        config=quick_config(), cache=ResultCache(tmp_path / "cache")
    ) as srv:
        client = ServiceClient(srv.base_url, timeout=30.0)
        client.healthz()
        client.metrics()  # first scrape: the request timer now has samples
        text = client.metrics()
        assert "repro_service_request_seconds_bucket{le=" in text
        assert "repro_service_requests_total" in text
        assert 'endpoint="GET metrics"' in text
        # raw exchange to check the content type of the exposition
        with urllib.request.urlopen(srv.base_url + "/v1/metrics") as response:
            assert response.headers["Content-Type"] == (
                obs.PROMETHEUS_CONTENT_TYPE
            )


@pytest.mark.service
@pytest.mark.chaos
def test_server_5xx_echoes_trace_id_and_dumps_flight(tmp_path):
    plan = FaultPlan.from_args(["service.request:rate=1.0"], seed=11)
    cache_root = tmp_path / "cache"
    with AnalysisServer(
        config=quick_config(), cache=ResultCache(cache_root), fault_plan=plan
    ) as srv:
        # raw urllib: ServiceClient would retry the 503 away
        try:
            urllib.request.urlopen(srv.base_url + "/v1/healthz", timeout=10)
            raise AssertionError("the injected fault must answer 503")
        except urllib.error.HTTPError as error:
            assert error.code == 503
            body = json.loads(error.read().decode("utf-8"))
    assert body["trace_id"], "the 503 body must echo the request trace id"
    assert "flight_dump" in body
    dump = json.loads(open(body["flight_dump"], encoding="utf-8").read())
    assert dump["schema"] == obs.FLIGHT_SCHEMA
    assert dump["trigger"] == "http-503"
    assert dump["trace_id"] == body["trace_id"]
    assert (cache_root / obs.DIAGNOSTICS_DIR).is_dir()
