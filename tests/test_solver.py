"""Tests of the finite-domain constraint solver."""

from __future__ import annotations

import pytest

from repro.minic.parser import parse_expression
from repro.minic.types import IntRange
from repro.solver import (
    Constraint,
    ConstraintSolver,
    Domain,
    EmptyDomainError,
    Satisfaction,
    SolverLimitReached,
    concrete_eval,
    interval_eval,
    substitute,
)


class TestDomain:
    def test_membership_and_size(self):
        domain = Domain(0, 10)
        assert 0 in domain and 10 in domain and 11 not in domain
        assert domain.size() == 11

    def test_excluded_values(self):
        domain = Domain(0, 5).remove_value(3)
        assert 3 not in domain and domain.size() == 5

    def test_remove_boundary_value_tightens_bounds(self):
        domain = Domain(0, 5).remove_value(0)
        assert domain.lo == 1

    def test_singleton(self):
        domain = Domain.singleton(7)
        assert domain.is_singleton() and domain.single_value() == 7

    def test_restrict_bounds(self):
        domain = Domain(0, 100).restrict_bounds(lo=10, hi=20)
        assert (domain.lo, domain.hi) == (10, 20)

    def test_empty_restriction_raises(self):
        with pytest.raises(EmptyDomainError):
            Domain(0, 5).restrict_bounds(lo=6)

    def test_removing_last_value_raises(self):
        with pytest.raises(EmptyDomainError):
            Domain.singleton(1).remove_value(1)

    def test_split_covers_domain(self):
        left, right = Domain(0, 9).split()
        assert left.hi + 1 == right.lo
        assert left.lo == 0 and right.hi == 9

    def test_iter_values_skips_holes(self):
        domain = Domain(0, 4).remove_value(2)
        assert list(domain.iter_values()) == [0, 1, 3, 4]

    def test_from_range(self):
        domain = Domain.from_range(IntRange(-3, 3))
        assert domain.bits() == 3


class TestExpressionEvaluation:
    def test_concrete_eval(self):
        expr = parse_expression("a * 2 + b")
        assert concrete_eval(expr, {"a": 3, "b": 1}) == 7

    def test_concrete_eval_short_circuit(self):
        expr = parse_expression("a != 0 && 10 / a > 1")
        assert concrete_eval(expr, {"a": 0}) == 0

    def test_interval_eval_addition(self):
        expr = parse_expression("a + b")
        result = interval_eval(expr, {"a": Domain(0, 10), "b": Domain(5, 6)})
        assert (result.lo, result.hi) == (5, 16)

    def test_interval_eval_comparison_definite(self):
        expr = parse_expression("a < 100")
        result = interval_eval(expr, {"a": Domain(0, 10)})
        assert (result.lo, result.hi) == (1, 1)

    def test_interval_eval_comparison_unknown(self):
        expr = parse_expression("a < 5")
        result = interval_eval(expr, {"a": Domain(0, 10)})
        assert (result.lo, result.hi) == (0, 1)

    def test_substitute_folds_constants(self):
        expr = parse_expression("a + b * 2")
        substituted = substitute(expr, {"a": 1, "b": 3})
        from repro.minic.ast_nodes import IntLiteral

        assert isinstance(substituted, IntLiteral) and substituted.value == 7

    def test_substitute_partial(self):
        expr = parse_expression("a + b")
        substituted = substitute(expr, {"a": 1})
        from repro.minic.folding import expression_variables

        assert expression_variables(substituted) == {"b"}

    def test_substitute_with_expression_values(self):
        expr = parse_expression("t > 10")
        substituted = substitute(expr, {"t": parse_expression("u + 1")})
        from repro.minic.folding import expression_variables

        assert expression_variables(substituted) == {"u"}


class TestConstraintFiltering:
    def test_status_satisfied(self):
        constraint = Constraint(parse_expression("a >= 0"))
        assert constraint.status({"a": Domain(0, 5)}) is Satisfaction.SATISFIED

    def test_status_violated(self):
        constraint = Constraint(parse_expression("a > 10"))
        assert constraint.status({"a": Domain(0, 5)}) is Satisfaction.VIOLATED

    def test_status_unknown(self):
        constraint = Constraint(parse_expression("a == 3"))
        assert constraint.status({"a": Domain(0, 5)}) is Satisfaction.UNKNOWN

    def test_propagate_equality(self):
        constraint = Constraint(parse_expression("a == 3"))
        narrowed = constraint.propagate({"a": Domain(0, 5)})
        assert narrowed["a"].is_singleton() and narrowed["a"].single_value() == 3

    def test_propagate_inequality_bounds(self):
        constraint = Constraint(parse_expression("a < b"))
        narrowed = constraint.propagate({"a": Domain(0, 10), "b": Domain(0, 4)})
        assert narrowed["a"].hi == 3

    def test_propagate_conjunction(self):
        constraint = Constraint(parse_expression("a >= 2 && a <= 4"))
        narrowed = constraint.propagate({"a": Domain(0, 10)})
        assert (narrowed["a"].lo, narrowed["a"].hi) == (2, 4)

    def test_propagate_negated_comparison(self):
        constraint = Constraint(parse_expression("!(a > 3)"))
        narrowed = constraint.propagate({"a": Domain(0, 10)})
        assert narrowed["a"].hi == 3

    def test_check_concrete(self):
        constraint = Constraint(parse_expression("a + b == 5"))
        assert constraint.check({"a": 2, "b": 3})
        assert not constraint.check({"a": 2, "b": 2})


class TestSolver:
    def test_simple_equality(self):
        solver = ConstraintSolver({"x": IntRange(0, 100)})
        solution = solver.solve([Constraint(parse_expression("x == 42"))])
        assert solution is not None and solution.assignment["x"] == 42

    def test_conjunction_of_comparisons(self):
        solver = ConstraintSolver({"x": IntRange(0, 255), "y": IntRange(0, 255)})
        solution = solver.solve(
            [
                Constraint(parse_expression("x > 200")),
                Constraint(parse_expression("y == x - 100")),
            ]
        )
        assert solution is not None
        assert solution.assignment["x"] > 200
        assert solution.assignment["y"] == solution.assignment["x"] - 100

    def test_unsatisfiable_detected(self):
        solver = ConstraintSolver({"x": IntRange(0, 10)})
        solution = solver.solve(
            [Constraint(parse_expression("x > 5")), Constraint(parse_expression("x < 3"))]
        )
        assert solution is None

    def test_solution_satisfies_every_constraint(self):
        constraints = [
            Constraint(parse_expression("a + b > 20")),
            Constraint(parse_expression("a < 10")),
            Constraint(parse_expression("b != 15")),
        ]
        solver = ConstraintSolver({"a": IntRange(0, 30), "b": IntRange(0, 30)}, constraints)
        solution = solver.solve()
        assert solution is not None
        for constraint in constraints:
            assert constraint.check(solution.assignment)

    def test_large_domains_solved_by_bisection(self):
        solver = ConstraintSolver({"x": IntRange(-32768, 32767)})
        solution = solver.solve([Constraint(parse_expression("x == 12345"))])
        assert solution is not None and solution.assignment["x"] == 12345
        assert solver.statistics.nodes < 200

    def test_disjunction(self):
        solver = ConstraintSolver({"x": IntRange(0, 100)})
        solution = solver.solve([Constraint(parse_expression("x == 7 || x == 93"))])
        assert solution is not None and solution.assignment["x"] in (7, 93)

    def test_multiplication_constraint(self):
        solver = ConstraintSolver({"x": IntRange(0, 50)})
        solution = solver.solve([Constraint(parse_expression("x * x == 49"))])
        assert solution is not None and solution.assignment["x"] == 7

    def test_node_limit_raises(self):
        solver = ConstraintSolver(
            {f"v{i}": IntRange(0, 3) for i in range(12)}, max_nodes=5
        )
        constraints = [
            Constraint(parse_expression(f"v{i} != v{i + 1}")) for i in range(11)
        ]
        with pytest.raises(SolverLimitReached):
            solver.solve(constraints)

    def test_statistics_accumulate(self):
        solver = ConstraintSolver({"x": IntRange(0, 10)})
        solver.solve([Constraint(parse_expression("x == 1"))])
        solver.solve([Constraint(parse_expression("x == 2"))])
        assert solver.statistics.solve_calls == 2
        assert solver.statistics.solutions == 2
        assert solver.statistics.peak_memory_bytes > 0

    def test_unconstrained_variables_get_values(self):
        solver = ConstraintSolver({"x": IntRange(0, 10), "free": IntRange(0, 1000)})
        solution = solver.solve([Constraint(parse_expression("x == 2"))])
        assert solution is not None
        assert "free" in solution.assignment
