"""Tests of the analysis service (:mod:`repro.service`).

All tests carry the ``service`` marker (registered in ``pytest.ini``);
they run in the default tier-1 suite but stay bounded: the server is
started in-process on an ephemeral loopback port, workloads are a handful
of tiny functions under the quick hybrid options, and every blocking wait
has a deadline.  The invariants under test are the service's two core
promises -- identical submissions collapse to one scheduler job, and a
served report is bit-identical to a direct cold :class:`ProjectScheduler`
run of the same sources -- plus the incremental-session frontier and the
chaos guarantee (injected request faults answer well-formed 503s, never a
hung connection, and never let a degraded run reach the cache).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.pipeline import AnalyzerConfig
from repro.project import Project, ProjectScheduler, ResultCache
from repro.resilience import FaultPlan
from repro.service import (
    AnalysisServer,
    JobQueue,
    ServiceClient,
    ServiceClientError,
    ServiceJobState,
    project_fingerprint,
    report_json,
)
from repro.testgen import HybridOptions

pytestmark = pytest.mark.service

QUICK_HYBRID = HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1)

#: a leaf<-mid<-top chain plus one standalone function: editing ``leaf``
#: must invalidate the whole chain but never ``solo``
CHAIN_V1 = {
    "main": """
int leaf(int x) { if (x > 3) { x = x - 1; } return x; }
int mid(int a) { int r; r = leaf(a); return r; }
int top(int b) { int r; r = mid(b); return r + 1; }
int solo(int c) { return c + 2; }
"""
}

#: same project with ``leaf`` edited (extra branch -> new fingerprint)
CHAIN_V2 = {
    "main": """
int leaf(int x) { if (x > 3) { x = x - 2; } return x; }
int mid(int a) { int r; r = leaf(a); return r; }
int top(int b) { int r; r = mid(b); return r + 1; }
int solo(int c) { return c + 2; }
"""
}

TINY = {"unit": "int only(int x) { if (x > 1) { x = x - 1; } return x; }"}


def quick_config(**overrides) -> AnalyzerConfig:
    options = dict(
        path_bound=2,
        hybrid=QUICK_HYBRID,
        extra_random_vectors=5,
        exhaustive_limit=None,
    )
    options.update(overrides)
    return AnalyzerConfig(**options)


@pytest.fixture()
def server(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    with AnalysisServer(config=quick_config(), cache=cache) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServiceClient(server.base_url, timeout=60.0)


# ---------------------------------------------------------------------- #
# submit / poll / result roundtrip
# ---------------------------------------------------------------------- #
def test_submit_poll_result_roundtrip(server, client):
    assert client.healthz()["status"] == "ok"
    response = client.analyze(CHAIN_V1)
    assert response["state"] in ("queued", "running", "done")
    assert response["deduplicated"] is False
    assert response["progress"]["total"] == 4

    status = client.wait_for(response["job_id"], timeout=120.0)
    assert status["state"] == "done"
    assert status["progress"]["completed"] == 4
    assert set(status["progress"]["functions"]) == {
        "main:leaf", "main:mid", "main:top", "main:solo",
    }
    assert status["result"] == f"/v1/results/{status['fingerprint']}"

    code, etag, body = client.result(status["fingerprint"])
    assert code == 200
    assert etag == f'"{status["fingerprint"]}"'
    report = json.loads(body)
    assert report["totals"]["functions"] == 4
    assert report["totals"]["all_safe"] is True


def test_result_etag_conditional_get(server, client):
    response = client.analyze(TINY, wait=60)
    assert response["state"] == "done"
    fingerprint = response["fingerprint"]

    code, etag, body = client.result(fingerprint)
    assert code == 200 and body

    # unchanged content-addressed result: 304, no body
    code, etag_again, body = client.result(fingerprint, etag=etag)
    assert code == 304
    assert body == ""
    assert etag_again == etag

    # a stale/foreign tag still gets the full body
    code, _, body = client.result(fingerprint, etag='"somethingelse"')
    assert code == 200 and body


def test_unknown_job_and_result_are_404(server, client):
    with pytest.raises(ServiceClientError) as excinfo:
        client.job("job-999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceClientError) as excinfo:
        client.result("0" * 64)
    assert excinfo.value.status == 404


def test_bad_submissions_are_permanent_errors(server, client):
    # no units -> 400
    with pytest.raises(ServiceClientError) as excinfo:
        client.analyze({})
    assert excinfo.value.status == 400
    # unknown config field -> 400
    with pytest.raises(ServiceClientError) as excinfo:
        client.analyze(TINY, config={"cost_model": "fancy"})
    assert excinfo.value.status == 400
    # unparsable source -> 422 (permanent: resubmitting can never succeed)
    with pytest.raises(ServiceClientError) as excinfo:
        client.analyze({"bad": "int f( {"})
    assert excinfo.value.status == 422


# ---------------------------------------------------------------------- #
# deduplication
# ---------------------------------------------------------------------- #
def test_duplicate_submissions_collapse_to_one_job():
    """In-flight dedup, deterministically: the worker is never started."""
    queue = JobQueue(config=quick_config())
    first, deduplicated = queue.submit(CHAIN_V1)
    assert deduplicated is False
    assert first.state is ServiceJobState.QUEUED

    second, deduplicated = queue.submit(dict(CHAIN_V1))
    assert deduplicated is True
    assert second is first
    assert first.submissions == 2
    # whitespace/comment edits share the content fingerprint -> same job
    reformatted = {"main": CHAIN_V1["main"].replace("\n", "\n\n") + "  \n"}
    third, deduplicated = queue.submit(reformatted)
    assert deduplicated is True and third is first

    # a semantic edit is new work
    other, deduplicated = queue.submit(CHAIN_V2)
    assert deduplicated is False and other is not first
    assert queue.stats()["deduplicated"] == 2


def test_concurrent_duplicate_submissions_over_http(server, client):
    responses = []
    errors = []

    def submit():
        try:
            own_client = ServiceClient(server.base_url, timeout=60.0)
            responses.append(own_client.analyze(CHAIN_V1, wait=60))
        except Exception as error:  # pragma: no cover - fail the assert below
            errors.append(error)

    threads = [threading.Thread(target=submit) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)

    assert not errors
    assert len(responses) == 4
    job_ids = {response["job_id"] for response in responses}
    assert len(job_ids) == 1, "identical submissions must share one job"
    assert all(r["state"] == "done" for r in responses)
    stats = client.stats()
    assert stats["jobs"]["submitted"] == 4
    assert stats["jobs"]["deduplicated"] == 3
    assert stats["jobs"]["completed"] == 1


# ---------------------------------------------------------------------- #
# incremental sessions
# ---------------------------------------------------------------------- #
def test_incremental_edit_reanalyses_exactly_the_frontier(server, client):
    first = client.analyze(CHAIN_V1, session="editor")
    first = client.wait_for(first["job_id"], timeout=120.0)
    assert first["state"] == "done"
    # first submission of a session has no previous fingerprints to diff
    assert "incremental" not in first

    second = client.analyze(CHAIN_V2, session="editor")
    second = client.wait_for(second["job_id"], timeout=120.0)
    assert second["state"] == "done"
    incremental = second["incremental"]
    # editing ``leaf`` dirties leaf + its transitive callers, nothing else
    assert incremental["frontier"] == ["main:leaf", "main:mid", "main:top"]
    assert incremental["reused"] == ["main:solo"]
    # the untouched function comes straight from the warm cache
    assert second["cache"]["hits"] >= 1


def test_incremental_rerun_is_bit_identical_to_cold_run(server, client, tmp_path):
    warm = client.analyze(CHAIN_V1, session="ident")
    client.wait_for(warm["job_id"], timeout=120.0)
    edited = client.analyze(CHAIN_V2, session="ident")
    edited = client.wait_for(edited["job_id"], timeout=120.0)
    assert edited["state"] == "done"
    _, _, served = client.result(edited["fingerprint"])

    # cold direct run of the edited sources: fresh cache, no service
    scheduler = ProjectScheduler(
        Project.from_sources(CHAIN_V2),
        config=quick_config(),
        cache=ResultCache(tmp_path / "cold-cache"),
    )
    cold = scheduler.run()

    served_payloads = json.loads(served)["functions"]
    for payload in served_payloads:
        # run-provenance fields (where it ran, what trouble it survived)
        # legitimately differ between an incremental and a cold run
        for key in ("from_cache", "retries", "fault_events"):
            payload.pop(key)
    assert json.dumps(served_payloads, indent=2) == json.dumps(
        cold.function_payloads(), indent=2
    ), "served incremental result must be bit-identical to a cold run"


# ---------------------------------------------------------------------- #
# served JSON equals the direct scheduler artefact
# ---------------------------------------------------------------------- #
def test_served_json_matches_direct_scheduler_run(tmp_path):
    """One shared cache, service vs direct: byte-identical report JSON."""
    cache_dir = tmp_path / "shared-cache"
    with AnalysisServer(
        config=quick_config(), cache=ResultCache(cache_dir)
    ) as srv:
        client = ServiceClient(srv.base_url, timeout=60.0)
        response = client.analyze(CHAIN_V1, wait=120)
        assert response["state"] == "done"
        _, _, served = client.result(response["fingerprint"])

    # the direct run hits the same warm cache entries the service wrote,
    # so even cache hit/miss counters and execution mode agree
    scheduler = ProjectScheduler(
        Project.from_sources(CHAIN_V1),
        config=quick_config(),
        cache=ResultCache(cache_dir),
    )
    direct = scheduler.run()
    direct_text = report_json(direct)

    served_body = json.loads(served)
    direct_body = json.loads(direct_text)
    assert served_body["totals"] == direct_body["totals"]

    # the result payloads (the run-independent identity) byte-match; the
    # only legitimate differences are run-provenance fields -- the direct
    # run hits the cache entries the service just wrote (from_cache flips)
    def strip(functions):
        return json.dumps(
            [
                {
                    key: value
                    for key, value in payload.items()
                    if key not in ("from_cache", "retries", "fault_events")
                }
                for payload in functions
            ],
            indent=2,
        )

    assert strip(served_body["functions"]) == strip(direct_body["functions"])


# ---------------------------------------------------------------------- #
# fingerprints
# ---------------------------------------------------------------------- #
def test_project_fingerprint_tracks_config_and_content():
    config = quick_config()
    fingerprints = {"main:f": "aa", "main:g": "bb"}
    base = project_fingerprint(fingerprints, config)
    assert base == project_fingerprint(dict(reversed(list(fingerprints.items()))), config)
    assert base != project_fingerprint({"main:f": "aa", "main:g": "cc"}, config)
    assert base != project_fingerprint(fingerprints, quick_config(path_bound=3))


# ---------------------------------------------------------------------- #
# chaos: injected request faults
# ---------------------------------------------------------------------- #
def test_injected_request_faults_answer_clean_503(tmp_path):
    """Every request faulted: well-formed 503 + Retry-After, no hang."""
    plan = FaultPlan.from_args(["service.request:rate=1.0"], seed=11)
    cache_dir = tmp_path / "chaos-cache"
    with AnalysisServer(
        config=quick_config(), cache=ResultCache(cache_dir), fault_plan=plan
    ) as srv:
        client = ServiceClient(srv.base_url, timeout=10.0, max_retries=1)
        with pytest.raises(ServiceClientError) as excinfo:
            client.analyze(TINY)
        assert excinfo.value.status == 503
        assert client.retried == 1, "503 must carry Retry-After and be retried"
        # the fault fired before any work was enqueued: nothing was
        # analysed, nothing reached the shared cache
        assert srv.queue.stats()["submitted"] == 0
    cached = [
        path
        for path in cache_dir.rglob("*.json")
        if obs.DIAGNOSTICS_DIR not in path.parts
    ]
    assert not cached, (
        "a degraded (faulted) request must never populate the cache"
    )
    # ...but each injected 5xx leaves a flight dump in diagnostics/
    assert list((cache_dir / obs.DIAGNOSTICS_DIR).glob("flight-*.json"))


def test_partial_request_faults_recover_and_serve():
    """rate<1 chaos: the client's retry loop rides out injected 503s."""
    plan = FaultPlan.from_args(["service.request:rate=0.4"], seed=3)
    with AnalysisServer(config=quick_config(), fault_plan=plan) as srv:
        client = ServiceClient(srv.base_url, timeout=60.0, max_retries=8)
        response = client.analyze(TINY, wait=60)
        assert response["state"] == "done"
        code, _, body = client.result(response["fingerprint"])
        assert code == 200
        assert json.loads(body)["totals"]["functions"] == 1
        stats = client.stats()
        assert stats["resilience"]["injected_requests"] >= 1
        assert stats["resilience"]["fault_plan"] == ["service.request:rate=0.4"]


def test_request_faults_never_reach_the_analysis_pipeline():
    """service.request is an HTTP-layer site; the queue must filter it."""
    plan = FaultPlan.from_args(["service.request:rate=1.0"], seed=1)
    queue = JobQueue(config=quick_config(), fault_plan=plan)
    assert queue._fault_plan.is_empty


# ---------------------------------------------------------------------- #
# stats and health
# ---------------------------------------------------------------------- #
def test_stats_endpoint_reports_queue_cache_and_requests(server, client):
    client.analyze(TINY, wait=60)
    stats = client.stats()
    assert stats["jobs"]["submitted"] == 1
    assert stats["jobs"]["completed"] == 1
    assert stats["cache"]["enabled"] is True
    assert stats["cache"]["entries"] >= 1
    assert "POST analyze" in stats["requests"]["by_endpoint"]
    assert stats["requests"]["by_status"].get("200") or stats[
        "requests"
    ]["by_status"].get("202")
    assert "service.request" in stats["perf"]["timers"]

    health = client.healthz()
    assert health["status"] == "ok"
    assert health["cache_enabled"] is True
