"""Cross-module integration tests.

These tests exercise complete slices of the tool chain on programs that are
big enough to be interesting but small enough to keep the suite fast:

* the whole pipeline on the Figure 1 example and a synthetic TargetLink-style
  program,
* agreement between the model checker's witnesses and concrete execution,
* consistency between the partitioning cost model (ip/m) and what the
  measurement campaign actually needs.
"""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg
from repro.hw import EvaluationBoard
from repro.measurement import MeasurementDatabase, MeasurementRunner
from repro.mc import EngineKind, ModelChecker, ModelCheckerOptions, Verdict
from repro.optim import OptimizationConfig, build_optimized_model
from repro.partition import build_instrumentation_plan, partition_function
from repro.pipeline import AnalyzerConfig, WcetAnalyzer
from repro.testgen import HybridOptions, build_targets
from repro.transsys import translate_function
from repro.wcet import TimingSchema, exhaustive_end_to_end
from repro.workloads.targetlink import generate_small_application


QUICK_HYBRID = HybridOptions(plateau_patterns=25, max_random_vectors=80, seed=7)


class TestFigure1EndToEnd:
    @pytest.fixture(scope="class")
    def report(self, figure1):
        config = AnalyzerConfig(path_bound=2, hybrid=QUICK_HYBRID, extra_random_vectors=5)
        return WcetAnalyzer(figure1, "main", config).analyze()

    def test_partition_matches_table1_row(self, report):
        assert report.partition.instrumentation_points == 16
        assert report.partition.measurements == 9

    def test_bound_is_tight_for_this_program(self, figure1, report):
        """For Figure 1 the longest path is feasible, so bound == exhaustive max."""
        board = EvaluationBoard(figure1)
        exhaustive = exhaustive_end_to_end(board, "main", {"i": __import__("repro.minic.types", fromlist=["IntRange"]).IntRange(0, 1)})
        assert report.wcet_bound_cycles >= exhaustive.max_cycles
        assert report.wcet_bound_cycles <= exhaustive.max_cycles * 1.1

    def test_per_segment_maxima_bounded_by_end_to_end(self, report):
        for segment in report.partition.segments:
            stats = report.database.statistics(segment.segment_id)
            if stats is None:
                continue
            assert stats.max_cycles <= report.wcet_bound_cycles


class TestSyntheticApplicationEndToEnd:
    @pytest.fixture(scope="class")
    def app(self):
        return generate_small_application(seed=21, target_blocks=90)

    def test_partition_and_measure_without_model_checking(self, app):
        """Random + GA test data alone must cover the synthetic app (it has no
        deep equality guards), and the resulting bound must dominate every
        observed end-to-end time."""
        function = app.analyzed.program.function(app.function_name)
        cfg = app.cfg
        partition = partition_function(function, 4, cfg)
        plan = build_instrumentation_plan(partition, cfg)
        board = EvaluationBoard(app.analyzed)

        from repro.testgen import HybridTestDataGenerator

        options = HybridOptions(
            plateau_patterns=60,
            max_random_vectors=400,
            use_model_checking=False,
            seed=3,
        )
        generator = HybridTestDataGenerator(
            app.analyzed, app.function_name, board, partition, cfg, options
        )
        suite = generator.generate()
        assert suite.vectors

        database = MeasurementDatabase()
        runner = MeasurementRunner(board, app.function_name, partition, plan, cfg)
        runner.run_vectors(suite.vectors, database)

        measured_segments = [
            s.segment_id
            for s in partition.segments
            if database.max_cycles(s.segment_id) is not None
        ]
        # generated mode-logic contains genuinely infeasible branches (guards
        # on locals that are still at their reset value), so heuristics alone
        # cannot reach every segment -- but they must reach the clear majority
        assert len(measured_segments) >= 0.6 * len(partition.segments)

        unmeasured = {
            s.segment_id
            for s in partition.segments
            if database.max_cycles(s.segment_id) is None
        }
        bound = TimingSchema(cfg, partition).compute(
            database, unreachable_segments=unmeasured
        )
        observed = max(
            board.run(app.function_name, vector).total_cycles for vector in suite.vectors
        )
        # the bound may miss unmeasured (never reached) segments, but it must
        # dominate everything that was actually observed
        assert bound.bound_cycles >= observed * 0.99

    def test_partitioning_scales_with_bound(self, app):
        function = app.analyzed.program.function(app.function_name)
        results = {
            bound: partition_function(function, bound, app.cfg)
            for bound in (1, 8, 10**6)
        }
        ips = [results[b].instrumentation_points for b in (1, 8, 10**6)]
        assert ips[0] > ips[1] > ips[2]
        measurements = [results[b].measurements for b in (1, 8, 10**6)]
        assert measurements[0] < measurements[2]


class TestWitnessConsistency:
    def test_model_checker_witnesses_replay_on_the_board(self, eval_program, eval_function_name):
        """Every reachable block's witness must actually reach that block."""
        translation = translate_function(eval_program, eval_function_name)
        checker = ModelChecker(translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC))
        board = EvaluationBoard(eval_program)
        cfg = translation.cfg
        checked = 0
        for block in cfg.real_blocks():
            result = checker.find_test_data_for_block(block.block_id)
            if result.verdict is not Verdict.REACHABLE:
                continue
            run = board.run(eval_function_name, result.counterexample.inputs)
            assert block.block_id in run.executed_blocks
            checked += 1
        assert checked >= len(cfg.real_blocks()) - 2

    def test_optimised_and_unoptimised_models_agree_on_reachability(
        self, eval_program, eval_function_name
    ):
        plain = build_optimized_model(
            eval_program, eval_function_name, OptimizationConfig.none()
        )
        optimised = build_optimized_model(
            eval_program, eval_function_name, OptimizationConfig.cfg_preserving()
        )
        plain_checker = ModelChecker(
            plain.translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC)
        )
        optimised_checker = ModelChecker(
            optimised.translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC)
        )
        for block in plain.translation.cfg.real_blocks():
            plain_verdict = plain_checker.find_test_data_for_block(block.block_id).verdict
            optimised_verdict = optimised_checker.find_test_data_for_block(
                block.block_id
            ).verdict
            assert plain_verdict == optimised_verdict


class TestTestgenMeasurementConsistency:
    def test_required_measurements_match_target_count(self, figure1, figure1_cfg):
        for bound in (1, 2, 6):
            partition = partition_function(
                figure1.program.function("main"), bound, figure1_cfg
            )
            targets = build_targets(partition, figure1_cfg)
            assert len(targets) == partition.measurements

    def test_wiper_measurement_campaign_counts(self, wiper_code, wiper_function_name):
        function = wiper_code.program.function(wiper_function_name)
        cfg = build_cfg(function)
        partition = partition_function(function, 2, cfg)
        targets = build_targets(partition, cfg)
        assert len(targets) == partition.measurements
