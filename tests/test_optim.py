"""Tests of the six state-space optimisations and the optimisation pipeline."""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg
from repro.mc import EngineKind, ModelChecker, ModelCheckerOptions, Verdict
from repro.minic import parse_and_analyze, print_program
from repro.optim import (
    OptimizationConfig,
    TABLE2_CONFIGURATIONS,
    apply_dead_code_elimination,
    apply_live_variable_optimisation,
    apply_reverse_cse,
    apply_statement_concatenation,
    build_optimized_model,
    dead_variable_set,
    find_substitutable_temporaries,
)
from repro.transsys import translate_function
from repro.workloads.optimisation_eval import (
    CONTROL_FLOW_IRRELEVANT,
    EVAL_FUNCTION_NAME,
    REVERSE_CSE_CANDIDATES,
    UNUSED_VARIABLES,
    find_target_block,
)


CSE_SOURCE = """
#pragma input u
#pragma range u 0 50
int u; int out;
void f(void) {
    int tmp;
    int twice;
    tmp = u + 1;
    twice = tmp + tmp;
    if (twice > 40) {
        out = 1;
    } else {
        out = 0;
    }
}
"""


class TestReverseCse:
    def test_candidates_found(self):
        analyzed = parse_and_analyze(CSE_SOURCE)
        function = analyzed.program.function("f")
        substitution, report = find_substitutable_temporaries(function, analyzed.table("f"))
        assert set(substitution) == {"tmp", "twice"}
        assert set(report.substituted) == {"tmp", "twice"}

    def test_chained_substitution_resolved(self):
        analyzed = parse_and_analyze(CSE_SOURCE)
        function = analyzed.program.function("f")
        substitution, _ = find_substitutable_temporaries(function, analyzed.table("f"))
        from repro.minic.folding import expression_variables

        assert expression_variables(substitution["twice"]) == {"u"}

    def test_multiply_assigned_variable_rejected(self):
        source = CSE_SOURCE.replace("twice = tmp + tmp;", "twice = tmp + tmp; tmp = 0;")
        analyzed = parse_and_analyze(source)
        substitution, report = find_substitutable_temporaries(
            analyzed.program.function("f"), analyzed.table("f")
        )
        assert "tmp" not in substitution
        assert "tmp" in report.rejected

    def test_transformed_function_drops_temporaries(self):
        analyzed = parse_and_analyze(CSE_SOURCE)
        new_function, _ = apply_reverse_cse(
            analyzed.program.function("f"), analyzed.table("f")
        )
        from repro.minic.ast_nodes import DeclStmt

        names = [n.name for n in new_function.walk() if isinstance(n, DeclStmt)]
        assert "tmp" not in names and "twice" not in names

    def test_transformed_program_is_semantically_equivalent(self):
        analyzed = parse_and_analyze(CSE_SOURCE)
        new_function, _ = apply_reverse_cse(
            analyzed.program.function("f"), analyzed.table("f")
        )
        from dataclasses import replace as dc_replace

        new_program = dc_replace(analyzed.program, functions=[new_function])
        new_analyzed = parse_and_analyze(print_program(new_program))
        from repro.hw import EvaluationBoard

        original_board = EvaluationBoard(analyzed)
        transformed_board = EvaluationBoard(new_analyzed)
        for u in (0, 19, 20, 25, 50):
            original = original_board.run("f", {"u": u}).final_environment["out"]
            transformed = transformed_board.run("f", {"u": u}).final_environment["out"]
            assert original == transformed

    def test_eval_program_candidates_match_paper(self, eval_program, eval_function_name):
        function = eval_program.program.function(eval_function_name)
        substitution, _ = find_substitutable_temporaries(
            function, eval_program.table(eval_function_name)
        )
        assert set(REVERSE_CSE_CANDIDATES) <= set(substitution)


class TestLiveVariable:
    def test_unused_variables_removed(self, eval_program, eval_function_name):
        function = eval_program.program.function(eval_function_name)
        new_function, report = apply_live_variable_optimisation(
            function, eval_program.table(eval_function_name)
        )
        assert set(UNUSED_VARIABLES) <= set(report.removed_unused)
        from repro.minic.ast_nodes import DeclStmt

        names = {n.name for n in new_function.walk() if isinstance(n, DeclStmt)}
        assert not (set(UNUSED_VARIABLES) & names)

    def test_merged_variables_do_not_interfere(self):
        source = """
        #pragma input u
        int u; int out;
        void f(void) {
            int first; int second;
            first = u + 1;
            out = first;
            second = u + 2;
            out = out + second;
        }
        """
        analyzed = parse_and_analyze(source)
        _, report = apply_live_variable_optimisation(
            analyzed.program.function("f"), analyzed.table("f")
        )
        assert report.merged  # first/second share a location

    def test_transformation_preserves_behaviour(self):
        source = """
        #pragma input u
        #pragma range u 0 9
        int u; int out;
        void f(void) {
            int first; int second; int unused_one;
            first = u * 2;
            out = first + 1;
            second = u + 7;
            out = out + second;
        }
        """
        analyzed = parse_and_analyze(source)
        new_function, _ = apply_live_variable_optimisation(
            analyzed.program.function("f"), analyzed.table("f")
        )
        from dataclasses import replace as dc_replace

        from repro.hw import EvaluationBoard

        new_analyzed = parse_and_analyze(
            print_program(dc_replace(analyzed.program, functions=[new_function]))
        )
        for u in range(10):
            before = EvaluationBoard(analyzed).run("f", {"u": u}).final_environment["out"]
            after = EvaluationBoard(new_analyzed).run("f", {"u": u}).final_environment["out"]
            assert before == after


class TestDeadElimination:
    def test_dead_variable_set_matches_paper_inventory(self, eval_program, eval_function_name):
        function = eval_program.program.function(eval_function_name)
        eliminated, _ = dead_variable_set(function, eval_program.table(eval_function_name))
        assert set(CONTROL_FLOW_IRRELEVANT) <= eliminated

    def test_inputs_never_eliminated(self, eval_program, eval_function_name):
        function = eval_program.program.function(eval_function_name)
        eliminated, _ = dead_variable_set(function, eval_program.table(eval_function_name))
        assert not ({"sensor_temp", "sensor_rpm", "sensor_load"} & eliminated)

    def test_keep_set_respected(self, eval_program, eval_function_name):
        function = eval_program.program.function(eval_function_name)
        eliminated, _ = dead_variable_set(
            function, eval_program.table(eval_function_name),
            keep=frozenset({"counter_x"}),
        )
        assert "counter_x" not in eliminated

    def test_dead_code_elimination_removes_statements(self, eval_program, eval_function_name):
        function = eval_program.program.function(eval_function_name)
        new_function, report = apply_dead_code_elimination(
            function, eval_program.table(eval_function_name)
        )
        assert report.removed_statements > 0
        before = sum(1 for _ in function.walk())
        after = sum(1 for _ in new_function.walk())
        assert after < before


class TestStatementConcatenation:
    def test_reduces_transition_count(self, eval_program, eval_function_name):
        translation = translate_function(eval_program, eval_function_name)
        before = len(translation.system.transitions)
        _, report = apply_statement_concatenation(translation.system)
        assert report.transitions_after < before
        assert report.fusions > 0

    def test_does_not_fuse_guarded_transitions(self, eval_program, eval_function_name):
        translation = translate_function(eval_program, eval_function_name)
        guarded_before = sum(1 for t in translation.system.transitions if t.guard is not None)
        apply_statement_concatenation(translation.system)
        guarded_after = sum(1 for t in translation.system.transitions if t.guard is not None)
        assert guarded_before == guarded_after

    def test_fused_updates_preserve_reachability(self, eval_program, eval_function_name):
        cfg = build_cfg(eval_program.program.function(eval_function_name))
        target = find_target_block(cfg)
        plain = translate_function(eval_program, eval_function_name)
        fused = translate_function(eval_program, eval_function_name)
        apply_statement_concatenation(fused.system)
        for translation in (plain, fused):
            checker = ModelChecker(translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC))
            result = checker.find_test_data_for_block(target)
            assert result.verdict is Verdict.REACHABLE
        # and the fused model needs fewer steps
        plain_steps = (
            ModelChecker(plain, ModelCheckerOptions(engine=EngineKind.SYMBOLIC))
            .find_test_data_for_block(target)
            .statistics.steps
        )
        fused_steps = (
            ModelChecker(fused, ModelCheckerOptions(engine=EngineKind.SYMBOLIC))
            .find_test_data_for_block(target)
            .statistics.steps
        )
        assert fused_steps < plain_steps


class TestOptimizationPipeline:
    def test_configurations_list_matches_table2(self):
        names = [name for name, _ in TABLE2_CONFIGURATIONS]
        assert names[0] == "unoptimized"
        assert "all optimisations used" in names
        assert len(names) == 8

    def test_all_optimisations_shrink_state_bits(self, eval_program, eval_function_name):
        unopt = build_optimized_model(
            eval_program, eval_function_name, OptimizationConfig.none()
        )
        optimised = build_optimized_model(
            eval_program, eval_function_name, OptimizationConfig.all()
        )
        assert optimised.state_bits < unopt.state_bits / 2

    @pytest.mark.parametrize("name,config", TABLE2_CONFIGURATIONS[2:])
    def test_each_single_optimisation_never_increases_state_bits(
        self, eval_program, eval_function_name, name, config
    ):
        unopt = build_optimized_model(
            eval_program, eval_function_name, OptimizationConfig.none()
        )
        single = build_optimized_model(eval_program, eval_function_name, config)
        assert single.state_bits <= unopt.state_bits, name

    def test_every_configuration_reaches_the_target(self, eval_program, eval_function_name):
        for name, config in TABLE2_CONFIGURATIONS:
            model = build_optimized_model(eval_program, eval_function_name, config)
            target = find_target_block(model.translation.cfg)
            checker = ModelChecker(
                model.translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC)
            )
            result = checker.find_test_data_for_block(target)
            assert result.verdict is Verdict.REACHABLE, name

    def test_witnesses_agree_with_concrete_execution(self, eval_program, eval_function_name):
        """Test data from the optimised model drives the real program to the target."""
        from repro.hw import EvaluationBoard

        model = build_optimized_model(
            eval_program, eval_function_name, OptimizationConfig.cfg_preserving()
        )
        target = find_target_block(model.translation.cfg)
        checker = ModelChecker(
            model.translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC)
        )
        result = checker.find_test_data_for_block(target)
        assert result.verdict is Verdict.REACHABLE
        board = EvaluationBoard(eval_program)
        run = board.run(eval_function_name, result.counterexample.inputs)
        assert target in run.executed_blocks

    def test_describe_and_notes(self, eval_program, eval_function_name):
        model = build_optimized_model(
            eval_program, eval_function_name, OptimizationConfig.all()
        )
        assert model.config.describe() != "unoptimised"
        assert model.notes
        summary = model.summary()
        assert summary["configuration"] == model.config.describe()

    def test_unknown_single_optimisation_raises(self):
        with pytest.raises(ValueError):
            OptimizationConfig.only("turbo_mode")
