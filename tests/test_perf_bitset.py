"""Tests of the perf subsystem and the indexed-bitset dataflow engine.

The heart of this module is the property-style cross-check: randomized CFGs
are generated from a small statement grammar and the bitset implementations
of liveness and reaching definitions are compared bit-for-bit against the
frozenset reference implementations preserved in
:mod:`repro.analysis.reference`.  A regression test additionally pins down
that the reverse-postorder worklist never takes more fixpoint iterations
than the seed's textbook ordering.
"""

from __future__ import annotations

import json
import random as stdlib_random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import (
    bitset_block_liveness,
    bitset_reaching_definitions,
    block_liveness,
    block_liveness_reference,
    cfg_bitset_index,
    cfg_use_defs,
    iter_bits,
    reaching_definitions,
    reaching_definitions_reference,
    solve,
    solve_reference,
)
from repro.analysis.bitset import VariableInterner
from repro.analysis.reference import liveness_problem, reaching_problem
from repro.cfg import build_cfg
from repro.minic import parse_and_analyze
from repro.perf import PerfRegistry
from repro.perf.bench import run_perf_bench


# --------------------------------------------------------------------------- #
# random structured program generator (mirrors tests/test_properties.py)
# --------------------------------------------------------------------------- #
_VARIABLES = ["a", "b", "c", "d", "e"]
_INPUTS = ["u", "v"]


def _gen_expr(rng: stdlib_random.Random, depth: int) -> str:
    if depth <= 0 or rng.random() < 0.4:
        if rng.random() < 0.4:
            return str(rng.randint(0, 20))
        return rng.choice(_VARIABLES + _INPUTS)
    op = rng.choice(["+", "-", "*"])
    return f"({_gen_expr(rng, depth - 1)} {op} {_gen_expr(rng, depth - 1)})"


def _gen_condition(rng: stdlib_random.Random) -> str:
    op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
    return f"{rng.choice(_VARIABLES + _INPUTS)} {op} {rng.randint(0, 20)}"


def _gen_statement(rng: stdlib_random.Random, depth: int) -> str:
    choice = rng.random()
    if depth <= 0 or choice < 0.5:
        return f"{rng.choice(_VARIABLES)} = {_gen_expr(rng, 2)};"
    if choice < 0.85:
        body = " ".join(_gen_statement(rng, depth - 1) for _ in range(rng.randint(1, 3)))
        if rng.random() < 0.5:
            other = " ".join(_gen_statement(rng, depth - 1) for _ in range(rng.randint(1, 2)))
            return f"if ({_gen_condition(rng)}) {{ {body} }} else {{ {other} }}"
        return f"if ({_gen_condition(rng)}) {{ {body} }}"
    cases = []
    for value in range(rng.randint(2, 4)):
        case_body = " ".join(_gen_statement(rng, depth - 1) for _ in range(rng.randint(1, 2)))
        cases.append(f"case {value}: {case_body} break;")
    return f"switch ({rng.choice(_INPUTS)}) {{ {' '.join(cases)} default: break; }}"


def random_cfg(seed: int):
    rng = stdlib_random.Random(seed)
    body = " ".join(_gen_statement(rng, 2) for _ in range(rng.randint(2, 6)))
    decls = "\n".join(f"int {name};" for name in _VARIABLES)
    inputs = "\n".join(f"int {name};" for name in _INPUTS)
    source = f"{inputs}\n{decls}\nvoid f(void) {{ {body} }}\n"
    analyzed = parse_and_analyze(source)
    return build_cfg(analyzed.program.function("f"))


# --------------------------------------------------------------------------- #
# cross-check: bitset engine equals the frozenset reference bit-for-bit
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_bitset_liveness_equals_reference(seed: int):
    cfg = random_cfg(seed)
    optimised = block_liveness(cfg)
    reference = block_liveness_reference(cfg)
    assert optimised.live_in == reference.live_in
    assert optimised.live_out == reference.live_out


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_bitset_reaching_equals_reference(seed: int):
    cfg = random_cfg(seed)
    optimised = reaching_definitions(cfg)
    reference = reaching_definitions_reference(cfg)
    assert optimised.reach_in == reference.reach_in
    assert optimised.reach_out == reference.reach_out
    assert set(optimised.definitions) == set(reference.definitions)
    assert optimised.uses == reference.uses


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_rpo_worklist_iterations_do_not_grow(seed: int):
    """The engineered solver must never iterate more than the seed solver."""
    cfg = random_cfg(seed)
    for problem in (liveness_problem(cfg), reaching_problem(cfg)[0]):
        reference = solve_reference(problem)
        optimised = solve(problem)
        assert optimised.in_facts == reference.in_facts
        assert optimised.out_facts == reference.out_facts
        assert optimised.iterations <= reference.iterations


def test_bitset_fixpoint_visits_each_block_once_on_acyclic_cfg():
    # loop-free CFG in reverse postorder: one visit per block suffices
    cfg = random_cfg(4711)
    assert bitset_block_liveness(cfg).iterations == len(cfg)
    assert bitset_reaching_definitions(cfg).iterations == len(cfg)


def test_solver_honours_explicit_order_and_predecessors():
    # diamond 1 -> {2, 3} -> 4 with explicit adjacency in both directions
    from repro.analysis import DataflowProblem, Direction, set_union

    edges = {1: [2, 3], 2: [4], 3: [4], 4: []}
    reverse = {1: [], 2: [1], 3: [1], 4: [2, 3]}
    problem = DataflowProblem(
        nodes=[4, 3, 2, 1],  # deliberately not in flow order
        successors=lambda n: edges[n],
        direction=Direction.FORWARD,
        boundary_nodes=[1],
        boundary=frozenset({"start"}),
        initial=frozenset(),
        join=set_union,
        transfer=lambda node, fact: fact | {f"n{node}"},
        predecessors=lambda n: reverse[n],
        order=[1, 2, 3, 4],
    )
    result = solve(problem)
    assert result.out_facts[4] == frozenset({"start", "n1", "n2", "n3", "n4"})
    # acyclic graph seeded in RPO: one visit per node
    assert result.iterations == 4


def test_stale_statement_append_is_caught_by_fingerprint():
    from repro.minic.ast_nodes import DeclStmt, IntLiteral

    cfg = random_cfg(21)
    before = block_liveness(cfg)  # populate use/def + bitset caches
    target = next(b for b in cfg.real_blocks() if b.statements)
    fresh = "zz_fresh"
    target.statements.append(DeclStmt(name=fresh, init=IntLiteral(value=1)))
    after = block_liveness(cfg)  # must rebuild, not serve stale masks
    reference = block_liveness_reference(cfg)
    assert after.live_in == reference.live_in
    assert after.live_out == reference.live_out
    del before


def test_statement_liveness_honours_detached_block():
    from repro.analysis import statement_liveness
    from repro.cfg.graph import BasicBlock

    cfg = random_cfg(33)
    original = next(b for b in cfg.real_blocks() if b.statements)
    block_liveness(cfg)  # warm the per-CFG caches
    detached = BasicBlock(
        block_id=original.block_id,
        statements=list(original.statements[:1]),
        terminator=original.terminator,
        kind=original.kind,
    )
    live_after = statement_liveness(cfg, detached, frozenset())
    assert len(live_after) == len(detached.statements) == 1


# --------------------------------------------------------------------------- #
# interner and cached accessors
# --------------------------------------------------------------------------- #
def test_iter_bits_round_trip():
    mask = (1 << 0) | (1 << 5) | (1 << 63) | (1 << 200)
    assert list(iter_bits(mask)) == [0, 5, 63, 200]
    assert list(iter_bits(0)) == []


def test_variable_interner_round_trip():
    interner = VariableInterner(["beta", "alpha", "gamma", "alpha"])
    assert interner.names == ("alpha", "beta", "gamma")
    mask = interner.mask_of({"gamma", "alpha"})
    assert interner.names_of(mask) == frozenset({"alpha", "gamma"})
    # memoised conversion returns the identical object
    assert interner.names_of(mask) is interner.names_of(mask)


def test_block_use_def_masks_match_frozenset_use_defs():
    cfg = random_cfg(99)
    index = cfg_bitset_index(cfg)
    use_defs = cfg_use_defs(cfg)
    names_of = index.interner.names_of
    for block in cfg.blocks():
        use_def = use_defs.block(block.block_id)
        assert names_of(index.block_use[block.block_id]) == use_def.uses
        assert names_of(index.block_def[block.block_id]) == use_def.defs


def test_cfg_adjacency_and_rpo_are_cached_and_invalidated():
    cfg = random_cfg(7)
    succ = cfg.successor_map()
    rpo = cfg.reverse_postorder()
    assert cfg.successor_map() is succ  # cached
    assert cfg.reverse_postorder() is rpo
    # RPO covers every block exactly once and starts at the entry
    assert sorted(rpo) == sorted(block.block_id for block in cfg.blocks())
    assert rpo[0] == cfg.entry.block_id
    # forward RPO: ignoring back edges, predecessors come first
    position = {block_id: i for i, block_id in enumerate(rpo)}
    for edge in cfg.edges():
        if edge.kind.value != "back":
            assert position[edge.source] < position[edge.target]
    # structural mutation drops the caches
    extra = cfg.new_block()
    cfg.add_edge(cfg.entry, extra)
    cfg.add_edge(extra, cfg.exit)
    assert cfg.successor_map() is not succ
    assert extra.block_id in cfg.reverse_postorder()


def test_backward_rpo_orders_successors_first():
    cfg = random_cfg(12)
    order = cfg.backward_reverse_postorder()
    assert sorted(order) == sorted(block.block_id for block in cfg.blocks())
    assert order[0] == cfg.exit.block_id
    position = {block_id: i for i, block_id in enumerate(order)}
    for edge in cfg.edges():
        if edge.kind.value != "back":
            assert position[edge.target] < position[edge.source]


# --------------------------------------------------------------------------- #
# perf instrumentation subsystem
# --------------------------------------------------------------------------- #
class TestPerfRegistry:
    def test_counters_accumulate(self):
        registry = PerfRegistry()
        registry.add("work")
        registry.add("work", 41)
        assert registry.counter("work") == 42
        assert registry.counter("missing") == 0

    def test_timed_context_manager_records(self):
        registry = PerfRegistry()
        with registry.timed("phase"):
            pass
        stat = registry.timer("phase")
        assert stat is not None and stat.calls == 1
        assert stat.total_seconds >= 0.0

    def test_profiled_decorator_counts_calls(self):
        registry = PerfRegistry()

        @registry.profiled("double")
        def double(x: int) -> int:
            return 2 * x

        assert double(21) == 42
        assert double(1) == 2
        stat = registry.timer("double")
        assert stat is not None and stat.calls == 2
        assert stat.mean_seconds == stat.total_seconds / 2

    def test_disabled_registry_is_a_no_op(self):
        registry = PerfRegistry(enabled=False)
        registry.add("work")
        with registry.timed("phase"):
            pass
        assert registry.counter("work") == 0
        assert registry.timer("phase") is None

    def test_reset_clears_everything(self):
        registry = PerfRegistry()
        registry.add("work")
        registry.record_time("phase", 0.5)
        registry.reset()
        assert registry.report()["counters"] == {}
        assert registry.report()["timers"] == {}

    def test_write_report_round_trips_as_json(self, tmp_path):
        registry = PerfRegistry()
        registry.add("states", 7)
        registry.record_time("solve", 0.25)
        path = tmp_path / "perf.json"
        payload = registry.write_report(path, extra={"label": "unit-test"})
        on_disk = json.loads(path.read_text(encoding="utf-8"))
        assert on_disk == payload
        assert on_disk["counters"]["states"] == 7
        assert on_disk["timers"]["solve"]["calls"] == 1
        assert on_disk["label"] == "unit-test"

    def test_solver_records_into_global_registry(self):
        from repro import perf

        perf.reset()
        cfg = random_cfg(3)
        block_liveness(cfg)
        reaching_definitions(cfg)
        report = perf.report()
        assert report["counters"]["liveness.bitset_runs"] >= 1
        assert report["counters"]["reaching.bitset_runs"] >= 1
        assert "liveness.bitset" in report["timers"]


# --------------------------------------------------------------------------- #
# benchmark harness smoke test (small workload, no file output by default)
# --------------------------------------------------------------------------- #
@pytest.mark.perf
def test_run_perf_bench_smoke(tmp_path):
    from repro.workloads.targetlink import generate_small_application

    app = generate_small_application(seed=7, target_blocks=60)
    output = tmp_path / "BENCH_perf.json"
    report = run_perf_bench(app=app, repeats=1, output=output)
    assert report["results_match"]
    assert report["speedup"]["combined"] > 0
    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk["workload"]["basic_blocks"] == app.basic_blocks
    assert set(on_disk["timings_seconds"]) == set(report["timings_seconds"])
