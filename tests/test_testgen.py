"""Tests of test-data generation: inputs, targets, random, GA, model checking, hybrid."""

from __future__ import annotations

import random

import pytest

from repro.cfg import build_cfg
from repro.hw import EvaluationBoard
from repro.minic import parse_and_analyze
from repro.partition import partition_function
from repro.testgen import (
    CoverageSource,
    CoverageTracker,
    GeneticOptions,
    GeneticTestDataGenerator,
    HybridOptions,
    HybridTestDataGenerator,
    InputSpace,
    ModelCheckingTestDataGenerator,
    RandomTestDataGenerator,
    TargetStatus,
    build_targets,
)


NEEDLE_SOURCE = """
#pragma input key
#pragma input level
#pragma range key 0 2000
#pragma range level 0 100
int key; int level; int out;
void f(void) {
    out = 0;
    if (key == 1234) {
        if (level > 90) {
            out = 2;
        } else {
            out = 1;
        }
    }
}
"""


@pytest.fixture(scope="module")
def needle():
    analyzed = parse_and_analyze(NEEDLE_SOURCE)
    cfg = build_cfg(analyzed.program.function("f"))
    partition = partition_function(analyzed.program.function("f"), 1, cfg)
    board = EvaluationBoard(analyzed)
    space = InputSpace.from_program(analyzed, "f")
    return analyzed, cfg, partition, board, space


def deep_needle_block(cfg) -> int:
    """The block assigning ``out = 2`` (requires key == 1234 and level > 90)."""
    from repro.minic.pretty import print_statement

    for block in cfg.real_blocks():
        for stmt in block.statements:
            if print_statement(stmt).strip() == "out = 2;":
                return block.block_id
    raise AssertionError("needle block not found")


class TestInputSpace:
    def test_from_program_reads_pragmas(self, needle):
        _, _, _, _, space = needle
        assert set(space.names) == {"key", "level"}
        assert space.ranges()["key"].hi == 2000
        assert space.size() == 2001 * 101

    def test_random_vector_within_ranges(self, needle):
        _, _, _, _, space = needle
        rng = random.Random(0)
        for _ in range(50):
            vector = space.random_vector(rng)
            assert 0 <= vector["key"] <= 2000
            assert 0 <= vector["level"] <= 100

    def test_clamp(self, needle):
        _, _, _, _, space = needle
        assert space.clamp({"key": 99999, "level": -5}) == {"key": 2000, "level": 0}

    def test_mutate_stays_in_range(self, needle):
        _, _, _, _, space = needle
        rng = random.Random(1)
        vector = {"key": 1000, "level": 50}
        for _ in range(50):
            vector = space.mutate(vector, rng, mutation_rate=1.0)
            assert 0 <= vector["key"] <= 2000 and 0 <= vector["level"] <= 100

    def test_crossover_mixes_parents(self, needle):
        _, _, _, _, space = needle
        rng = random.Random(2)
        child = space.crossover({"key": 1, "level": 2}, {"key": 3, "level": 4}, rng)
        assert child["key"] in (1, 3) and child["level"] in (2, 4)

    def test_function_parameters_are_inputs(self):
        analyzed = parse_and_analyze("void f(UInt8 p) { if (p) { act(); } }")
        space = InputSpace.from_program(analyzed, "f")
        assert space.names == ["p"] and space.ranges()["p"].hi == 255


class TestTargetsAndCoverage:
    def test_targets_cover_every_segment_path(self, needle):
        _, cfg, partition, _, _ = needle
        targets = build_targets(partition, cfg)
        per_segment: dict[int, int] = {}
        for target in targets:
            per_segment[target.segment_id] = per_segment.get(target.segment_id, 0) + 1
        for segment in partition.segments:
            assert per_segment[segment.segment_id] == segment.path_count

    def test_coverage_tracker_records_runs(self, needle):
        _, cfg, partition, board, _ = needle
        tracker = CoverageTracker.create(partition, cfg)
        assert not tracker.is_complete()
        newly = tracker.record_run(board.run("f", {"key": 0, "level": 0}))
        assert newly
        assert 0.0 < tracker.coverage_ratio() < 1.0

    def test_duplicate_runs_do_not_recover_targets(self, needle):
        _, cfg, partition, board, _ = needle
        tracker = CoverageTracker.create(partition, cfg)
        first = tracker.record_run(board.run("f", {"key": 0, "level": 0}))
        second = tracker.record_run(board.run("f", {"key": 1, "level": 0}))
        assert first and not second

    def test_figure1_has_eleven_targets_at_block_granularity(self, figure1, figure1_cfg):
        partition = partition_function(figure1.program.function("main"), 1, figure1_cfg)
        targets = build_targets(partition, figure1_cfg)
        assert len(targets) == 11


class TestRandomGenerator:
    def test_deterministic_given_seed(self, needle):
        _, _, _, _, space = needle
        first = RandomTestDataGenerator(space, seed=7).generate(10)
        second = RandomTestDataGenerator(space, seed=7).generate(10)
        assert first == second

    def test_unique_generation(self, needle):
        _, _, _, _, space = needle
        vectors = RandomTestDataGenerator(space, seed=3).generate_unique(20)
        keys = {tuple(sorted(v.items())) for v in vectors}
        assert len(keys) == len(vectors)

    def test_random_alone_misses_the_needle(self, needle):
        """Random testing almost surely misses key == 1234 (motivation for GA/MC)."""
        _, cfg, partition, board, space = needle
        tracker = CoverageTracker.create(partition, cfg)
        for vector in RandomTestDataGenerator(space, seed=11).generate(300):
            tracker.record_run(board.run("f", vector))
        uncovered = tracker.uncovered_targets()
        assert uncovered, "the needle path should not be found by 300 random vectors"


class TestGeneticGenerator:
    def test_ga_finds_the_needle(self, needle):
        analyzed, cfg, partition, board, space = needle
        tracker = CoverageTracker.create(partition, cfg)
        for vector in RandomTestDataGenerator(space, seed=5).generate(50):
            tracker.record_run(board.run("f", vector))
        generator = GeneticTestDataGenerator(
            board, "f", space, GeneticOptions(population_size=40, max_generations=60, seed=5)
        )
        deep_block = deep_needle_block(cfg)
        needle_targets = [
            t for t in tracker.uncovered_targets() if t.blocks == (deep_block,)
        ]
        assert needle_targets
        # search for the deep `out = 2` block (key == 1234 and level > 90)
        target = needle_targets[0]
        outcome = generator.search(target, coverage=tracker)
        assert outcome.covered
        run = board.run("f", outcome.vector)
        assert target.blocks[0] in run.executed_blocks

    def test_fitness_zero_iff_path_taken(self, needle):
        analyzed, cfg, partition, board, space = needle
        targets = build_targets(partition, cfg)
        generator = GeneticTestDataGenerator(board, "f", space)
        hit_run = board.run("f", {"key": 1234, "level": 95})
        deep_block = max(b.block_id for b in cfg.real_blocks())
        for target in targets:
            fitness = generator.fitness(hit_run, target)
            if set(target.blocks) <= set(hit_run.executed_blocks):
                assert fitness == 0.0
            else:
                assert fitness > 0.0
        del deep_block

    def test_fitness_monotone_in_branch_distance(self, needle):
        analyzed, cfg, partition, board, space = needle
        targets = build_targets(partition, cfg)
        # target: the block guarded by key == 1234
        guarded = next(t for t in targets if len(t.blocks) == 1 and t.blocks[0] != 2)
        generator = GeneticTestDataGenerator(board, "f", space)
        far = generator.fitness(board.run("f", {"key": 0, "level": 0}), guarded)
        near = generator.fitness(board.run("f", {"key": 1230, "level": 0}), guarded)
        assert near <= far

    def test_statistics_updated(self, needle):
        analyzed, cfg, partition, board, space = needle
        generator = GeneticTestDataGenerator(
            board, "f", space, GeneticOptions(population_size=6, max_generations=2, seed=1)
        )
        targets = build_targets(partition, cfg)
        generator.search(targets[0])
        assert generator.statistics.targets_attempted == 1
        assert generator.statistics.evaluations > 0


class TestModelCheckingGenerator:
    def test_covers_the_needle_exactly(self, needle):
        analyzed, cfg, partition, board, _ = needle
        targets = build_targets(partition, cfg)
        generator = ModelCheckingTestDataGenerator(analyzed, "f")
        deep_target = next(t for t in targets if t.blocks == (deep_needle_block(cfg),))
        outcome = generator.generate_for_target(deep_target)
        assert outcome.status is TargetStatus.COVERED
        run = board.run("f", outcome.vector)
        assert deep_target.blocks[0] in run.executed_blocks
        assert outcome.vector["key"] == 1234 and outcome.vector["level"] > 90

    def test_detects_infeasible_paths(self, figure1, figure1_cfg):
        partition = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        targets = build_targets(partition, figure1_cfg)
        generator = ModelCheckingTestDataGenerator(figure1, "main")
        outcomes = generator.generate_for_targets(targets)
        statuses = [o.status for o in outcomes]
        assert TargetStatus.INFEASIBLE in statuses  # the printf5 path
        assert statuses.count(TargetStatus.COVERED) == len(statuses) - 1

    def test_statistics_accumulate(self, needle):
        analyzed, cfg, partition, _, _ = needle
        generator = ModelCheckingTestDataGenerator(analyzed, "f")
        generator.generate_for_targets(build_targets(partition, cfg)[:3])
        assert generator.statistics.queries == 3
        assert generator.statistics.total_time_seconds >= 0.0


class TestHybridGenerator:
    def test_full_coverage_of_needle_program(self, needle):
        analyzed, cfg, partition, board, _ = needle
        options = HybridOptions(
            plateau_patterns=40,
            max_random_vectors=200,
            genetic=GeneticOptions(population_size=20, max_generations=10, seed=3),
            seed=3,
        )
        generator = HybridTestDataGenerator(analyzed, "f", board, partition, cfg, options)
        suite = generator.generate()
        assert suite.is_complete()
        assert suite.summary()["uncovered"] == 0
        # the needle paths are beyond plain random testing, so the exact
        # phases (GA or model checking) must have contributed
        assert suite.heuristic_share <= 1.0
        assert len(suite.vectors) >= 3

    def test_hybrid_marks_infeasible_paths(self, figure1, figure1_cfg):
        partition = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        board = EvaluationBoard(figure1)
        options = HybridOptions(plateau_patterns=20, max_random_vectors=50, seed=1)
        generator = HybridTestDataGenerator(
            figure1, "main", board, partition, figure1_cfg, options
        )
        suite = generator.generate()
        assert suite.is_complete()
        assert len(suite.infeasible_targets) == 1

    def test_phases_can_be_disabled(self, figure1, figure1_cfg):
        partition = partition_function(figure1.program.function("main"), 1, figure1_cfg)
        board = EvaluationBoard(figure1)
        options = HybridOptions(
            plateau_patterns=10, max_random_vectors=30,
            use_genetic=False, use_model_checking=False, seed=2,
        )
        generator = HybridTestDataGenerator(
            figure1, "main", board, partition, figure1_cfg, options
        )
        suite = generator.generate()
        assert suite.model_checking_queries == 0
        assert suite.genetic_evaluations == 0

    def test_report_provenance_complete(self, figure1, figure1_cfg):
        partition = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        board = EvaluationBoard(figure1)
        generator = HybridTestDataGenerator(
            figure1, "main", board, partition, figure1_cfg,
            HybridOptions(plateau_patterns=10, max_random_vectors=30, seed=4),
        )
        suite = generator.generate()
        targets = build_targets(partition, figure1_cfg)
        assert len(suite.reports) == len(targets)
        for report in suite.reports:
            if report.source in (CoverageSource.RANDOM, CoverageSource.GENETIC,
                                 CoverageSource.MODEL_CHECKING):
                assert report.vector is not None
