"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg
from repro.minic import parse_and_analyze
from repro.workloads.figure1 import figure1_analyzed
from repro.workloads.optimisation_eval import (
    EVAL_FUNCTION_NAME,
    optimisation_eval_program,
)
from repro.workloads.wiper import WIPER_FUNCTION_NAME, wiper_case_study


@pytest.fixture(scope="session")
def figure1():
    """The analysed Figure 1 example program."""
    return figure1_analyzed()


@pytest.fixture(scope="session")
def figure1_cfg(figure1):
    return build_cfg(figure1.program.function("main"))


@pytest.fixture(scope="session")
def eval_program():
    """The analysed Table 2 optimisation-evaluation program."""
    return optimisation_eval_program()


@pytest.fixture(scope="session")
def eval_function_name():
    return EVAL_FUNCTION_NAME


@pytest.fixture(scope="session")
def wiper_code():
    """The generated wiper-control case study."""
    return wiper_case_study()


@pytest.fixture(scope="session")
def wiper_function_name():
    return WIPER_FUNCTION_NAME


@pytest.fixture(scope="session")
def small_loop_program():
    """A small program with a bounded loop, shared by several test modules."""
    source = """
    #pragma input n
    #pragma range n 0 10
    int n;
    int total;

    void accumulate(void) {
        int i;
        total = 0;
        i = 0;
        #pragma loopbound(10)
        while (i < n) {
            total = total + i;
            i = i + 1;
        }
        if (total > 20) {
            total = 20;
        }
    }
    """
    return parse_and_analyze(source)


@pytest.fixture(scope="session")
def branching_program():
    """A compact program with if/else and switch used across analysis tests."""
    source = """
    #pragma input mode
    #pragma input level
    #pragma range mode 0 3
    #pragma range level 0 100
    int mode;
    int level;
    int output;
    int unused_global;

    void classify(void) {
        int severity;
        int scratch;
        severity = 0;
        scratch = level + 1;
        switch (mode) {
        case 0:
            if (level > 50) {
                severity = 2;
            } else {
                severity = 1;
            }
            break;
        case 1:
        case 2:
            severity = 3;
            break;
        default:
            severity = 4;
            break;
        }
        if (severity >= 3) {
            output = scratch;
        } else {
            output = 0;
        }
    }
    """
    return parse_and_analyze(source)
