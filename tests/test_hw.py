"""Tests of the simulated target: cost model, interpreter, evaluation board."""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg
from repro.hw import (
    CostModel,
    EvaluationBoard,
    ExecutionError,
    HCS12_COST_MODEL,
    Interpreter,
    uniform_cost_model,
)
from repro.minic import parse_and_analyze
from repro.partition import build_instrumentation_plan, partition_function


def board_for(source: str, **kwargs) -> EvaluationBoard:
    return EvaluationBoard(parse_and_analyze(source), **kwargs)


class TestCostModel:
    def test_division_costs_more_than_addition(self):
        assert HCS12_COST_MODEL.binary_cost("/", 16) > HCS12_COST_MODEL.binary_cost("+", 16)

    def test_wide_operations_cost_more(self):
        assert HCS12_COST_MODEL.binary_cost("+", 16) >= HCS12_COST_MODEL.binary_cost("+", 8)

    def test_external_call_override(self):
        model = CostModel(external_call_cycles={"printf1": 55})
        assert model.external_call_cost("printf1") == 55
        assert model.external_call_cost("other") == model.default_external_call

    def test_uniform_model_flat_costs(self):
        model = uniform_cost_model(2)
        assert model.binary_cost("*", 16) == 2
        assert model.load_cost(None) == 2


class TestInterpreterSemantics:
    SOURCE = """
    #pragma input a
    #pragma input b
    #pragma range a 0 100
    #pragma range b 0 100
    int a; int b; int result;
    void f(void) {
        if (a > b) {
            result = a - b;
        } else {
            result = b - a;
        }
    }
    """

    def test_branch_semantics(self):
        board = board_for(self.SOURCE)
        assert board.run("f", {"a": 10, "b": 3}).final_environment["result"] == 7
        assert board.run("f", {"a": 3, "b": 10}).final_environment["result"] == 7

    def test_arithmetic_wraps_by_type(self):
        source = "UInt8 x; void f(void) { x = 200; x = x + 100; }"
        board = board_for(source)
        assert board.run("f").final_environment["x"] == 44

    def test_signed_wrapping(self):
        source = "int x; void f(void) { x = 32767; x = x + 1; }"
        board = board_for(source)
        assert board.run("f").final_environment["x"] == -32768

    def test_switch_dispatch(self):
        source = """
        #pragma input s
        #pragma range s 0 5
        int s; int out;
        void f(void) {
            switch (s) {
            case 0: out = 10; break;
            case 1: case 2: out = 20; break;
            default: out = 30; break;
            }
        }
        """
        board = board_for(source)
        assert board.run("f", {"s": 0}).final_environment["out"] == 10
        assert board.run("f", {"s": 2}).final_environment["out"] == 20
        assert board.run("f", {"s": 5}).final_environment["out"] == 30

    def test_loop_execution(self, small_loop_program):
        board = EvaluationBoard(small_loop_program)
        result = board.run("accumulate", {"n": 4})
        assert result.final_environment["total"] == 0 + 1 + 2 + 3

    def test_defined_function_calls(self):
        source = """
        int doubled(int v) { return v + v; }
        #pragma input x
        int x; int y;
        void f(void) { y = doubled(x) + 1; }
        """
        board = board_for(source)
        assert board.run("f", {"x": 5}).final_environment["y"] == 11

    def test_division_by_zero_raises(self):
        source = "#pragma input d\nint d; int r; void f(void) { r = 10 / d; }"
        board = board_for(source)
        with pytest.raises(ExecutionError):
            board.run("f", {"d": 0})

    def test_step_limit_detects_runaway_loops(self):
        source = "int x; void f(void) { x = 0; while (x < 10) { x = x - 1; } }"
        board = board_for(source, max_steps=5_000)
        with pytest.raises(ExecutionError):
            board.run("f")

    def test_conditional_expression(self):
        source = "#pragma input c\nint c; int r; void f(void) { r = c > 0 ? 5 : 9; }"
        board = board_for(source)
        assert board.run("f", {"c": 1}).final_environment["r"] == 5
        assert board.run("f", {"c": 0}).final_environment["r"] == 9

    def test_global_initialisers_respected(self):
        source = "int base = 40; int r; void f(void) { r = base + 2; }"
        board = board_for(source)
        assert board.run("f").final_environment["r"] == 42


class TestCycleAccounting:
    def test_cycles_deterministic(self, figure1):
        board = EvaluationBoard(figure1)
        first = board.run("main", {"i": 0}).total_cycles
        second = board.run("main", {"i": 0}).total_cycles
        assert first == second > 0

    def test_longer_path_costs_more(self, figure1):
        board = EvaluationBoard(figure1)
        long_path = board.run("main", {"i": 0}).total_cycles  # executes all printfs
        short_path = board.run("main", {"i": 1}).total_cycles
        assert long_path > short_path

    def test_cost_model_scales_cycles(self, figure1):
        cheap = EvaluationBoard(figure1, cost_model=uniform_cost_model(1))
        expensive = EvaluationBoard(figure1, cost_model=uniform_cost_model(3))
        assert (
            expensive.run("main", {"i": 0}).total_cycles
            > cheap.run("main", {"i": 0}).total_cycles
        )

    def test_block_trace_cycles_monotone(self, figure1):
        board = EvaluationBoard(figure1)
        trace = board.run("main", {"i": 0}).block_trace
        cycles = [event.cycles for event in trace]
        assert cycles == sorted(cycles)

    def test_external_call_cost_included(self):
        with_call = board_for("void f(void) { helper(); }").run("f").total_cycles
        without_call = board_for("int x; void f(void) { x = 1; }").run("f").total_cycles
        assert with_call > without_call


class TestTracesAndEvents:
    def test_block_trace_matches_cfg_path(self, figure1):
        board = EvaluationBoard(figure1)
        run = board.run("main", {"i": 1})
        cfg = board.cfg("main")
        executed = run.executed_blocks
        assert executed[0] == cfg.entry.block_id
        assert executed[-1] == cfg.exit.block_id
        # i=1 skips the then-branches
        assert 5 not in executed and 10 not in executed

    def test_edge_trace_connects_blocks(self, figure1):
        board = EvaluationBoard(figure1)
        run = board.run("main", {"i": 0})
        for edge, (source, target) in zip(
            run.edge_trace, zip(run.executed_blocks, run.executed_blocks[1:])
        ):
            assert edge.source == source and edge.target == target

    def test_branch_events_have_zero_distance_for_taken_outcome(self, figure1):
        board = EvaluationBoard(figure1)
        run = board.run("main", {"i": 0})
        for event in run.branch_events:
            if event.outcome:
                assert event.distance_true == 0.0
            else:
                assert event.distance_false == 0.0

    def test_branch_distance_decreases_toward_boundary(self):
        source = "#pragma input v\n#pragma range v 0 100\nint v; int o; " \
                 "void f(void) { if (v > 90) { o = 1; } }"
        board = board_for(source)
        far = board.run("f", {"v": 10}).branch_events[0].distance_true
        near = board.run("f", {"v": 89}).branch_events[0].distance_true
        assert near < far

    def test_switch_events_recorded(self):
        source = """
        #pragma input s
        #pragma range s 0 3
        int s; int o;
        void f(void) { switch (s) { case 1: o = 1; break; default: o = 0; break; } }
        """
        board = board_for(source)
        run = board.run("f", {"s": 1})
        assert run.switch_events and run.switch_events[0].value == 1


class TestInstrumentedRuns:
    def test_readings_match_plan_triggers(self, figure1, figure1_cfg):
        board = EvaluationBoard(figure1)
        partition = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        plan = build_instrumentation_plan(partition, figure1_cfg)
        instrumented = board.run_instrumented("main", {"i": 0}, plan)
        assert instrumented.readings
        # readings are ordered by trace position
        indices = [r.trace_index for r in instrumented.readings]
        assert indices == sorted(indices)

    def test_every_executed_segment_gets_entry_reading(self, figure1, figure1_cfg):
        board = EvaluationBoard(figure1)
        partition = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        plan = build_instrumentation_plan(partition, figure1_cfg)
        instrumented = board.run_instrumented("main", {"i": 0}, plan)
        executed = set(instrumented.run.executed_blocks)
        for segment in partition.segments:
            if segment.entry_block in executed:
                assert instrumented.readings_for_segment(segment.segment_id)

    def test_interpreter_exposed_by_board(self, figure1):
        board = EvaluationBoard(figure1)
        assert isinstance(board.interpreter, Interpreter)
