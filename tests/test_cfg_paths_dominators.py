"""Unit tests for path counting, path enumeration and dominators."""

from __future__ import annotations

import pytest

from repro.cfg import (
    DominatorTree,
    PathCountError,
    build_cfg,
    count_ast_paths,
    count_cfg_paths,
    enumerate_paths,
    natural_loops,
)
from repro.cfg.paths import PATH_COUNT_CAP
from repro.minic import parse_and_analyze


def function_of(body: str, prelude: str = "int a; int b; int c;"):
    analyzed = parse_and_analyze(f"{prelude}\nvoid f(void) {{ {body} }}")
    return analyzed.program.function("f")


class TestAstPathCounting:
    def test_straight_line_is_one_path(self):
        assert count_ast_paths(function_of("a = 1; b = 2;")) == 1

    def test_if_without_else_doubles(self):
        assert count_ast_paths(function_of("if (a) { b = 1; }")) == 2

    def test_if_else_is_two(self):
        assert count_ast_paths(function_of("if (a) { b = 1; } else { b = 2; }")) == 2

    def test_sequence_of_ifs_multiplies(self):
        body = "if (a) { b = 1; } if (b) { c = 1; } if (c) { a = 1; }"
        assert count_ast_paths(function_of(body)) == 8

    def test_nested_if(self):
        body = "if (a) { if (b) { c = 1; } else { c = 2; } }"
        assert count_ast_paths(function_of(body)) == 3

    def test_switch_paths_sum(self):
        body = "switch (a) { case 1: b = 1; break; case 2: b = 2; break; default: b = 0; break; }"
        assert count_ast_paths(function_of(body)) == 3

    def test_switch_without_default_adds_implicit_path(self):
        body = "switch (a) { case 1: b = 1; break; case 2: b = 2; break; }"
        assert count_ast_paths(function_of(body)) == 3

    def test_annotated_loop_paths(self):
        body = "#pragma loopbound(2)\nwhile (a) { if (b) { c = 1; } }"
        # 0, 1 or 2 iterations with 2 paths per iteration: 1 + 2 + 4 = 7
        assert count_ast_paths(function_of(body)) == 7

    def test_unannotated_loop_uses_default_bound(self):
        body = "while (a) { b = 1; }"
        assert count_ast_paths(function_of(body), default_loop_bound=3) == 4

    def test_unannotated_loop_without_default_raises(self):
        body = "while (a) { b = 1; }"
        with pytest.raises(PathCountError):
            count_ast_paths(function_of(body), default_loop_bound=None)

    def test_do_while_requires_at_least_one_iteration(self):
        body = "#pragma loopbound(2)\ndo { if (a) { b = 1; } } while (c);"
        # 1 or 2 iterations, 2 paths each: 2 + 4 = 6
        assert count_ast_paths(function_of(body)) == 6

    def test_counts_saturate(self):
        body = " ".join(f"if (a > {i}) {{ b = {i}; }}" for i in range(70))
        assert count_ast_paths(function_of(body)) == PATH_COUNT_CAP

    def test_figure1_total_paths(self, figure1):
        assert count_ast_paths(figure1.program.function("main")) == 6

    def test_early_return_counted_conservatively(self):
        body = "if (a) { return; } if (b) { c = 1; }"
        function = function_of(body)
        # the structural count over-approximates early returns (4 >= the true
        # 3 CFG paths); over-approximation is safe for the partitioner because
        # it can only make segments *smaller*, never miss a path
        structural = count_ast_paths(function)
        exact = count_cfg_paths(build_cfg(function))
        assert exact == 3
        assert structural >= exact


class TestCfgPathCounting:
    def test_cfg_count_matches_ast_for_loop_free_code(self, figure1, figure1_cfg):
        assert count_cfg_paths(figure1_cfg) == count_ast_paths(
            figure1.program.function("main")
        )

    def test_cfg_count_matches_ast_on_branching_program(self, branching_program):
        function = branching_program.program.function("classify")
        cfg = build_cfg(function)
        assert count_cfg_paths(cfg) == count_ast_paths(function)

    def test_enumerate_paths_yields_distinct_block_sequences(self, figure1_cfg):
        paths = list(enumerate_paths(figure1_cfg))
        assert len(paths) == 6
        assert len({p.blocks for p in paths}) == 6

    def test_enumerate_paths_region_restriction(self, figure1_cfg):
        # restrict to the then-branch region of the first if (blocks 5,6,7,8)
        region = {5, 6, 7, 8}
        paths = list(enumerate_paths(figure1_cfg, source=5, region=region))
        assert len(paths) == 2

    def test_enumerate_limit_raises(self, figure1_cfg):
        with pytest.raises(PathCountError):
            list(enumerate_paths(figure1_cfg, limit=2))

    def test_paths_start_at_source(self, figure1_cfg):
        for path in enumerate_paths(figure1_cfg):
            assert path.blocks[0] == figure1_cfg.entry.block_id

    def test_path_edges_connect_blocks(self, figure1_cfg):
        for path in enumerate_paths(figure1_cfg):
            for edge, (source, target) in zip(path.edges, zip(path.blocks, path.blocks[1:])):
                assert edge.source == source and edge.target == target


class TestDominators:
    def test_entry_dominates_everything(self, figure1_cfg):
        tree = DominatorTree(figure1_cfg)
        for block in figure1_cfg.blocks():
            assert tree.dominates(figure1_cfg.entry, block)

    def test_branch_does_not_dominate_join_alternatives(self, figure1_cfg):
        tree = DominatorTree(figure1_cfg)
        # block 7 (printf4) does not dominate the exit
        assert not tree.dominates(7, figure1_cfg.exit.block_id)

    def test_immediate_dominator_of_entry_is_none(self, figure1_cfg):
        tree = DominatorTree(figure1_cfg)
        assert tree.immediate_dominator(figure1_cfg.entry) is None

    def test_dominated_set_contains_self(self, figure1_cfg):
        tree = DominatorTree(figure1_cfg)
        assert 4 in tree.dominated_set(4)

    def test_dominance_frontier_of_branch_alternatives_is_join(self, figure1_cfg):
        tree = DominatorTree(figure1_cfg)
        frontier = tree.dominance_frontier()
        # the then/else blocks of the inner if meet at block 9 (the second if)
        assert 9 in frontier.get(7, set())
        assert 9 in frontier.get(8, set())

    def test_natural_loops_empty_for_loop_free_code(self, figure1_cfg):
        assert natural_loops(figure1_cfg) == []

    def test_natural_loops_found_for_while(self):
        analyzed = parse_and_analyze(
            "int n; void f(void) { int i; i = 0; while (i < n) { i = i + 1; } }"
        )
        cfg = build_cfg(analyzed.program.function("f"))
        loops = natural_loops(cfg)
        assert len(loops) == 1
        header, body = loops[0]
        assert header in body and len(body) >= 2
