"""Unit tests of CFG construction."""

from __future__ import annotations

import pytest

from repro.cfg import (
    BlockKind,
    CfgError,
    EdgeKind,
    TerminatorKind,
    build_all_cfgs,
    build_cfg,
    to_dot,
)
from repro.minic import parse_and_analyze


def cfg_of(body: str, header: str = "void f(void)", prelude: str = ""):
    analyzed = parse_and_analyze(f"{prelude}\n{header} {{ {body} }}")
    return build_cfg(analyzed.program.function("f"))


class TestStraightLineCode:
    def test_assignments_share_a_block(self):
        cfg = cfg_of("int a; int b; a = 1; b = 2; a = b;")
        assert len(cfg.real_blocks()) == 1

    def test_calls_terminate_blocks(self):
        cfg = cfg_of("first(); second(); third();")
        assert len(cfg.real_blocks()) == 3

    def test_entry_and_exit_are_virtual(self):
        cfg = cfg_of("int a; a = 1;")
        assert cfg.entry.kind is BlockKind.ENTRY
        assert cfg.exit.kind is BlockKind.EXIT
        assert cfg.entry.is_virtual and cfg.exit.is_virtual

    def test_empty_function_connects_entry_to_exit(self):
        cfg = cfg_of("")
        assert cfg.exit in cfg.successors(cfg.entry) or len(cfg.real_blocks()) == 0

    def test_validate_passes_for_builder_output(self, figure1_cfg):
        figure1_cfg.validate()


class TestBranches:
    def test_if_produces_branch_terminator(self):
        cfg = cfg_of("int a; if (a) { a = 1; }")
        branch_blocks = [
            b for b in cfg.real_blocks() if b.terminator.kind is TerminatorKind.BRANCH
        ]
        assert len(branch_blocks) == 1
        kinds = {e.kind for e in cfg.out_edges(branch_blocks[0])}
        assert kinds == {EdgeKind.TRUE, EdgeKind.FALSE}

    def test_if_else_has_two_way_join(self):
        cfg = cfg_of("int a; int b; if (a) { b = 1; } else { b = 2; } b = 3;")
        joins = [b for b in cfg.real_blocks() if len(cfg.predecessors(b)) == 2]
        assert len(joins) == 1

    def test_no_empty_join_blocks_created(self):
        cfg = cfg_of("int a; if (a) { helper(); } other();")
        for block in cfg.real_blocks():
            assert block.statements or block.terminator.condition is not None

    def test_nested_if_structure(self):
        cfg = cfg_of("int a; if (a) { if (a > 1) { helper(); } }")
        branches = [
            b for b in cfg.real_blocks() if b.terminator.kind is TerminatorKind.BRANCH
        ]
        assert len(branches) == 2

    def test_return_connects_to_exit(self):
        cfg = cfg_of("int a; if (a) { return; } a = 1;", header="void f(void)")
        return_blocks = [
            b for b in cfg.real_blocks() if b.terminator.kind is TerminatorKind.RETURN
        ]
        assert len(return_blocks) == 1
        assert cfg.out_edges(return_blocks[0])[0].target == cfg.exit.block_id


class TestSwitch:
    def test_switch_edges_carry_case_values(self):
        cfg = cfg_of(
            "int x; switch (x) { case 1: x = 1; break; case 2: case 3: x = 2; break; "
            "default: x = 0; break; }"
        )
        switch_block = next(
            b for b in cfg.real_blocks() if b.terminator.kind is TerminatorKind.SWITCH
        )
        case_edges = [e for e in cfg.out_edges(switch_block) if e.kind is EdgeKind.CASE]
        default_edges = [e for e in cfg.out_edges(switch_block) if e.kind is EdgeKind.DEFAULT]
        assert len(case_edges) == 2
        assert len(default_edges) == 1
        assert tuple(sorted(case_edges[1].case_values)) in ((2, 3), (1,))

    def test_switch_without_default_gets_implicit_default_edge(self):
        cfg = cfg_of("int x; switch (x) { case 1: x = 2; break; } x = 9;")
        switch_block = next(
            b for b in cfg.real_blocks() if b.terminator.kind is TerminatorKind.SWITCH
        )
        kinds = [e.kind for e in cfg.out_edges(switch_block)]
        assert EdgeKind.DEFAULT in kinds

    def test_wiper_switch_has_ten_outgoing_edges(self, wiper_code, wiper_function_name):
        cfg = build_cfg(wiper_code.program.function(wiper_function_name))
        switch_block = next(
            b for b in cfg.real_blocks() if b.terminator.kind is TerminatorKind.SWITCH
        )
        # 9 states plus the default arm
        assert len(cfg.out_edges(switch_block)) == 10


class TestLoops:
    def test_while_loop_has_back_edge(self):
        cfg = cfg_of("int i; i = 0; while (i < 3) { i = i + 1; }")
        assert any(e.kind is EdgeKind.BACK for e in cfg.edges())

    def test_do_while_loop_has_back_edge(self):
        cfg = cfg_of("int i; i = 0; do { i = i + 1; } while (i < 3);")
        assert any(e.kind is EdgeKind.BACK for e in cfg.edges())

    def test_for_loop_with_step_block(self):
        cfg = cfg_of("int i; int s; s = 0; for (i = 0; i < 3; i = i + 1) { s = s + i; }")
        assert any(e.kind is EdgeKind.BACK for e in cfg.edges())
        cfg.validate()

    def test_break_leaves_the_loop(self):
        cfg = cfg_of("int i; i = 0; while (1) { if (i > 2) { break; } i = i + 1; } i = 9;")
        cfg.validate()
        # the block after the loop must be reachable
        assert len(cfg.reachable_blocks()) == len(cfg.blocks())

    def test_continue_targets_loop_header(self):
        cfg = cfg_of(
            "int i; int s; s = 0; i = 0; "
            "while (i < 5) { i = i + 1; if (i == 2) { continue; } s = s + i; }"
        )
        cfg.validate()
        back_edges = [e for e in cfg.edges() if e.kind is EdgeKind.BACK]
        assert len(back_edges) >= 2

    def test_topological_order_rejects_untagged_cycles(self):
        cfg = cfg_of("int i; i = 0; while (i < 3) { i = i + 1; }")
        order = cfg.topological_order()
        assert len(order) == len(cfg.blocks())


class TestGraphApi:
    def test_unknown_block_raises(self, figure1_cfg):
        with pytest.raises(CfgError):
            figure1_cfg.block(9999)

    def test_cannot_remove_entry(self, figure1_cfg):
        with pytest.raises(CfgError):
            figure1_cfg.remove_block(figure1_cfg.entry)

    def test_to_networkx_preserves_counts(self, figure1_cfg):
        graph = figure1_cfg.to_networkx()
        assert graph.number_of_nodes() == len(figure1_cfg.blocks())
        assert graph.number_of_edges() == len(figure1_cfg.edges())

    def test_to_dot_output(self, figure1_cfg):
        dot = to_dot(figure1_cfg, show_statements=True)
        assert dot.startswith("digraph")
        assert "start" in dot and "end" in dot

    def test_build_all_cfgs(self):
        analyzed = parse_and_analyze("void a(void) { } void b(void) { x(); }")
        cfgs = build_all_cfgs(analyzed.program)
        assert set(cfgs) == {"a", "b"}

    def test_summary_counts(self, figure1_cfg):
        summary = figure1_cfg.summary()
        assert summary["blocks"] == 11
        assert summary["conditional_branches"] == 3


class TestFigure1Structure:
    """The CFG of the paper's Figure 1 example (11 measurable blocks)."""

    def test_block_count_matches_paper(self, figure1_cfg):
        assert len(figure1_cfg.real_blocks()) == 11

    def test_branch_count(self, figure1_cfg):
        branches = [
            b
            for b in figure1_cfg.real_blocks()
            if b.terminator.kind is TerminatorKind.BRANCH
        ]
        assert len(branches) == 3

    def test_each_printf_call_is_its_own_block(self, figure1_cfg):
        call_blocks = [b for b in figure1_cfg.real_blocks() if b.has_call]
        assert len(call_blocks) == 8  # printf1 .. printf8

    def test_source_line_labels_present(self, figure1_cfg):
        labels = [b.label() for b in figure1_cfg.real_blocks()]
        assert all(label.isdigit() for label in labels)
