"""Unit tests of semantic analysis (symbol resolution and type checking)."""

from __future__ import annotations

import pytest

from repro.minic import parse_and_analyze
from repro.minic.errors import SemanticError
from repro.minic.types import BOOL, INT16, UINT8, VOID


class TestSymbolResolution:
    def test_tables_created_per_function(self):
        analyzed = parse_and_analyze("void f(void) { } void g(void) { }")
        assert set(analyzed.function_tables) == {"f", "g"}

    def test_globals_visible_in_function(self):
        analyzed = parse_and_analyze("int shared; void f(void) { shared = 1; }")
        assert "shared" in analyzed.table("f").variables

    def test_parameters_are_inputs(self):
        analyzed = parse_and_analyze("void f(int a) { a = a + 1; }")
        assert "a" in analyzed.table("f").inputs

    def test_pragma_inputs_collected(self):
        analyzed = parse_and_analyze("#pragma input x\nint x; void f(void) { x = 1; }")
        assert analyzed.table("f").inputs == ["x"]

    def test_undeclared_variable_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("void f(void) { ghost = 1; }")

    def test_undeclared_read_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("int y; void f(void) { y = ghost; }")

    def test_duplicate_global_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("int x; int x;")

    def test_duplicate_local_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("void f(void) { int a; int a; }")

    def test_shadowing_global_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("int a; void f(void) { int a; }")

    def test_called_functions_recorded(self):
        analyzed = parse_and_analyze("void f(void) { helper(); other(1); }")
        assert analyzed.table("f").called_functions == ["helper", "other"]
        assert set(analyzed.program.external_functions) == {"helper", "other"}

    def test_void_variable_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("void x;")


class TestTypeChecking:
    def test_literal_types(self):
        analyzed = parse_and_analyze("int x; void f(void) { x = 5; }")
        function = analyzed.program.function("f")
        assign = function.body.statements[0].expr
        assert assign.value.ctype is INT16

    def test_relational_result_is_bool(self):
        analyzed = parse_and_analyze("int x; int y; void f(void) { y = x < 3; }")
        assign = analyzed.program.function("f").body.statements[0].expr
        assert assign.value.ctype is BOOL

    def test_common_type_promotion(self):
        analyzed = parse_and_analyze(
            "UInt8 a; UInt8 b; int r; void f(void) { r = a + b; }"
        )
        assign = analyzed.program.function("f").body.statements[0].expr
        assert assign.value.ctype.bits >= 16

    def test_identifier_type_from_declaration(self):
        analyzed = parse_and_analyze("UInt8 small; void f(void) { small = 1; }")
        assign = analyzed.program.function("f").body.statements[0].expr
        assert assign.target.ctype is UINT8

    def test_call_to_known_function_type(self):
        analyzed = parse_and_analyze(
            "int helper(int a) { return a; } int r; void f(void) { r = helper(1); }"
        )
        assign = analyzed.program.function("f").body.statements[0].expr
        assert assign.value.ctype is INT16

    def test_call_to_unknown_function_is_void(self):
        analyzed = parse_and_analyze("void f(void) { log_event(); }")
        call = analyzed.program.function("f").body.statements[0].expr
        assert call.ctype is VOID

    def test_wrong_argument_count_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze(
                "int helper(int a) { return a; } void f(void) { helper(1, 2); }"
            )

    def test_return_value_from_void_function_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("void f(void) { return 1; }")

    def test_missing_return_value_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("int f(void) { return; }")

    def test_break_outside_loop_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("void f(void) { break; }")

    def test_continue_outside_loop_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze("void f(void) { continue; }")

    def test_duplicate_case_label_raises(self):
        with pytest.raises(SemanticError):
            parse_and_analyze(
                "int x; void f(void) { switch (x) { case 1: break; case 1: break; } }"
            )

    def test_multiple_default_labels_raise(self):
        with pytest.raises(SemanticError):
            parse_and_analyze(
                "int x; void f(void) { switch (x) { default: break; default: break; } }"
            )

    def test_break_inside_switch_allowed(self):
        analyzed = parse_and_analyze(
            "int x; void f(void) { switch (x) { case 1: x = 2; break; } }"
        )
        assert "f" in analyzed.function_tables

    def test_declared_range_attached_to_symbol(self):
        analyzed = parse_and_analyze(
            "#pragma input x\n#pragma range x 2 9\nint x; void f(void) { x = x; }"
        )
        symbol = analyzed.table("f").variables["x"]
        assert symbol.declared_range.lo == 2 and symbol.declared_range.hi == 9


class TestWorkloadPrograms:
    def test_figure1_analyses_cleanly(self, figure1):
        table = figure1.table("main")
        assert table.inputs == ["i"]
        assert set(table.called_functions) == {f"printf{i}" for i in range(1, 9)}

    def test_wiper_code_analyses_cleanly(self, wiper_code, wiper_function_name):
        table = wiper_code.analyzed.table(wiper_function_name)
        assert "wiper_state" in table.variables
        assert "speed_selector" in table.inputs

    def test_eval_program_variable_inventory(self, eval_program, eval_function_name):
        from repro.workloads.optimisation_eval import BOOLEAN_VARIABLES, BYTE_VARIABLES

        table = eval_program.table(eval_function_name)
        for name in BOOLEAN_VARIABLES + BYTE_VARIABLES:
            assert name in table.variables
