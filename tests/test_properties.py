"""Property-based tests (hypothesis) on core invariants.

Random structured programs are generated from a small statement grammar; the
properties cover the frontend round-trip, CFG well-formedness, partition
invariants, interpreter/cost-model determinism, the solver's soundness and the
type system's wrapping rules.
"""

from __future__ import annotations

import random as stdlib_random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cfg import build_cfg, count_ast_paths, count_cfg_paths
from repro.hw import EvaluationBoard
from repro.minic import parse_and_analyze, parse_program, print_program
from repro.minic.parser import parse_expression
from repro.minic.types import BOOL, INT8, INT16, UINT8, UINT16, IntRange
from repro.partition import partition_function
from repro.solver import Constraint, ConstraintSolver, concrete_eval, interval_eval, Domain

# --------------------------------------------------------------------------- #
# program generator (deterministic from a seed drawn by hypothesis)
# --------------------------------------------------------------------------- #
_VARIABLES = ["a", "b", "c", "d"]
_INPUTS = ["u", "v"]


def _gen_expr(rng: stdlib_random.Random, depth: int) -> str:
    if depth <= 0 or rng.random() < 0.4:
        choice = rng.random()
        if choice < 0.4:
            return str(rng.randint(0, 20))
        return rng.choice(_VARIABLES + _INPUTS)
    op = rng.choice(["+", "-", "*"])
    return f"({_gen_expr(rng, depth - 1)} {op} {_gen_expr(rng, depth - 1)})"


def _gen_condition(rng: stdlib_random.Random) -> str:
    op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
    return f"{rng.choice(_VARIABLES + _INPUTS)} {op} {rng.randint(0, 20)}"


def _gen_statement(rng: stdlib_random.Random, depth: int) -> str:
    choice = rng.random()
    if depth <= 0 or choice < 0.45:
        return f"{rng.choice(_VARIABLES)} = {_gen_expr(rng, 2)};"
    if choice < 0.60:
        return f"probe_{rng.randint(0, 3)}();"
    if choice < 0.85:
        body = " ".join(_gen_statement(rng, depth - 1) for _ in range(rng.randint(1, 3)))
        if rng.random() < 0.5:
            other = " ".join(_gen_statement(rng, depth - 1) for _ in range(rng.randint(1, 2)))
            return f"if ({_gen_condition(rng)}) {{ {body} }} else {{ {other} }}"
        return f"if ({_gen_condition(rng)}) {{ {body} }}"
    cases = []
    for value in range(rng.randint(2, 4)):
        case_body = " ".join(_gen_statement(rng, depth - 1) for _ in range(rng.randint(1, 2)))
        cases.append(f"case {value}: {case_body} break;")
    return f"switch ({rng.choice(_INPUTS)}) {{ {' '.join(cases)} default: break; }}"


def generate_program(seed: int) -> str:
    rng = stdlib_random.Random(seed)
    body = " ".join(_gen_statement(rng, 2) for _ in range(rng.randint(2, 6)))
    decls = "\n".join(f"int {name};" for name in _VARIABLES)
    pragmas = "\n".join(f"#pragma input {name}\n#pragma range {name} 0 15" for name in _INPUTS)
    inputs = "\n".join(f"int {name};" for name in _INPUTS)
    return f"{pragmas}\n{inputs}\n{decls}\nvoid f(void) {{ {body} }}\n"


# --------------------------------------------------------------------------- #
# frontend properties
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_pretty_print_round_trip_is_stable(seed: int):
    source = generate_program(seed)
    once = print_program(parse_program(source))
    twice = print_program(parse_program(once))
    assert once == twice


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_generated_programs_analyze_and_build_cfgs(seed: int):
    analyzed = parse_and_analyze(generate_program(seed))
    cfg = build_cfg(analyzed.program.function("f"))
    cfg.validate()
    # structural and CFG path counts agree on loop-free generated programs
    assert count_cfg_paths(cfg) == count_ast_paths(analyzed.program.function("f"))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000), bound=st.integers(min_value=1, max_value=50))
def test_partition_invariants_on_random_programs(seed: int, bound: int):
    analyzed = parse_and_analyze(generate_program(seed))
    function = analyzed.program.function("f")
    cfg = build_cfg(function)
    result = partition_function(function, bound, cfg)
    result.validate(cfg)
    assert result.instrumentation_points == 2 * len(result.segments)
    assert result.measurements >= len(result.segments)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    u=st.integers(min_value=0, max_value=15),
    v=st.integers(min_value=0, max_value=15),
)
def test_interpreter_is_deterministic_and_counts_cycles(seed: int, u: int, v: int):
    analyzed = parse_and_analyze(generate_program(seed))
    board = EvaluationBoard(analyzed)
    first = board.run("f", {"u": u, "v": v})
    second = board.run("f", {"u": u, "v": v})
    assert first.total_cycles == second.total_cycles > 0
    assert first.executed_blocks == second.executed_blocks
    cycles = [event.cycles for event in first.block_trace]
    assert cycles == sorted(cycles)


# --------------------------------------------------------------------------- #
# type-system properties
# --------------------------------------------------------------------------- #
@settings(max_examples=200, deadline=None)
@given(value=st.integers(min_value=-(10**9), max_value=10**9))
def test_wrapping_is_idempotent_and_in_range(value: int):
    for ctype in (BOOL, INT8, UINT8, INT16, UINT16):
        wrapped = ctype.wrap(value)
        assert ctype.min_value <= wrapped <= ctype.max_value
        assert ctype.wrap(wrapped) == wrapped


@settings(max_examples=100, deadline=None)
@given(lo=st.integers(-1000, 1000), size=st.integers(0, 2000))
def test_int_range_bits_bound_size(lo: int, size: int):
    value_range = IntRange(lo, lo + size)
    assert 2 ** value_range.bits() >= value_range.size()


# --------------------------------------------------------------------------- #
# solver properties
# --------------------------------------------------------------------------- #
_EXPR_OPS = ["+", "-", "*"]
_CMP_OPS = ["<", "<=", ">", ">=", "==", "!="]


def _constraint_text(rng: stdlib_random.Random) -> str:
    left = rng.choice(["x", "y", "z"])
    if rng.random() < 0.5:
        right = str(rng.randint(-20, 40))
    else:
        right = f"{rng.choice(['x', 'y', 'z'])} {rng.choice(_EXPR_OPS)} {rng.randint(0, 10)}"
    return f"{left} {rng.choice(_CMP_OPS)} {right}"


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=100_000), count=st.integers(1, 4))
def test_solver_models_satisfy_their_constraints(seed: int, count: int):
    rng = stdlib_random.Random(seed)
    constraints = [Constraint(parse_expression(_constraint_text(rng))) for _ in range(count)]
    solver = ConstraintSolver(
        {"x": IntRange(0, 30), "y": IntRange(-10, 20), "z": IntRange(0, 50)},
        constraints,
        max_nodes=50_000,
    )
    solution = solver.solve()
    if solution is not None:
        for constraint in constraints:
            assert constraint.check(solution.assignment)
    else:
        # UNSAT answers are cross-checked by brute force on a coarse grid
        for x in range(0, 31, 3):
            for y in range(-10, 21, 3):
                for z in range(0, 51, 5):
                    assignment = {"x": x, "y": y, "z": z}
                    assert not all(c.check(assignment) for c in constraints)


@settings(max_examples=80, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    x=st.integers(0, 30),
    y=st.integers(-10, 20),
)
def test_interval_eval_encloses_concrete_eval(seed: int, x: int, y: int):
    rng = stdlib_random.Random(seed)
    text = f"({_gen_expr(rng, 2)})".replace("a", "x").replace("b", "y").replace(
        "c", "3"
    ).replace("d", "7").replace("u", "x").replace("v", "y")
    expr = parse_expression(text)
    concrete = concrete_eval(expr, {"x": x, "y": y})
    interval = interval_eval(expr, {"x": Domain(0, 30), "y": Domain(-10, 20)})
    assert interval.lo <= concrete <= interval.hi
