"""Tests of the Stateflow/TargetLink code generator and the workload programs."""

from __future__ import annotations

import pytest

from repro.cfg import TerminatorKind, build_cfg, count_ast_paths
from repro.codegen import (
    ChartError,
    ChartVariable,
    StateflowChart,
    generate_chart_code,
)
from repro.hw import EvaluationBoard
from repro.minic.types import BOOL, IntRange, UINT8
from repro.workloads.figure1 import (
    EXPECTED_BASIC_BLOCKS,
    EXPECTED_TOTAL_PATHS,
    figure1_analyzed,
)
from repro.workloads.optimisation_eval import (
    BOOLEAN_VARIABLES,
    BYTE_VARIABLES,
    EVAL_FUNCTION_NAME,
    find_target_block,
    optimisation_eval_program,
    source_line_count,
)
from repro.workloads.targetlink import generate_small_application
from repro.workloads.wiper import (
    WIPER_FUNCTION_NAME,
    WIPER_STATES,
    wiper_chart,
    wiper_input_ranges,
)


def tiny_chart() -> StateflowChart:
    chart = StateflowChart(name="toggle", state_variable="mode")
    chart.inputs = [ChartVariable("button", BOOL, IntRange(0, 1))]
    chart.outputs = [ChartVariable("lamp", BOOL, IntRange(0, 1))]
    chart.add_state("Off", entry_actions=["lamp = 0"])
    chart.add_state("On", entry_actions=["lamp = 1"])
    chart.add_transition("Off", "On", "button == 1")
    chart.add_transition("On", "Off", "button == 1")
    return chart


class TestChartModel:
    def test_validation_passes_for_well_formed_chart(self):
        tiny_chart().validate()

    def test_duplicate_state_rejected(self):
        chart = tiny_chart()
        with pytest.raises(ChartError):
            chart.add_state("Off")

    def test_transition_to_unknown_state_rejected(self):
        chart = tiny_chart()
        chart.add_transition("On", "Missing", "1")
        with pytest.raises(ChartError):
            chart.validate()

    def test_unreachable_state_rejected(self):
        chart = tiny_chart()
        chart.add_state("Orphan")
        with pytest.raises(ChartError):
            chart.validate()

    def test_empty_chart_rejected(self):
        with pytest.raises(ChartError):
            StateflowChart(name="empty").validate()

    def test_block_count_metric(self):
        assert tiny_chart().block_count() > 4

    def test_state_range_and_type(self):
        chart = tiny_chart()
        assert chart.state_range() == IntRange(0, 1)
        assert chart.state_variable_type() is UINT8


class TestCodeGeneration:
    def test_generated_code_parses_and_analyses(self):
        code = generate_chart_code(tiny_chart(), "toggle_step")
        assert code.function_name == "toggle_step"
        assert "toggle_step" in [f.name for f in code.program.functions]

    def test_generated_structure_is_switch_of_ifs(self):
        code = generate_chart_code(tiny_chart(), "toggle_step")
        cfg = build_cfg(code.program.function("toggle_step"))
        kinds = {b.terminator.kind for b in cfg.real_blocks()}
        assert TerminatorKind.SWITCH in kinds
        assert TerminatorKind.BRANCH in kinds

    def test_generated_chart_semantics(self):
        code = generate_chart_code(tiny_chart(), "toggle_step")
        board = EvaluationBoard(code.analyzed)
        # pressing the button in state Off moves to On and switches the lamp on
        run = board.run("toggle_step", {"button": 1, "mode": 0})
        assert run.final_environment["mode"] == 1
        assert run.final_environment["lamp"] == 1
        # not pressing it keeps the state
        run = board.run("toggle_step", {"button": 0, "mode": 0})
        assert run.final_environment["mode"] == 0

    def test_state_variable_annotated_as_input(self):
        code = generate_chart_code(tiny_chart(), "toggle_step")
        assert "mode" in code.program.input_variables
        assert "button" in code.program.input_variables


class TestWiperCaseStudy:
    def test_chart_has_nine_states(self):
        chart = wiper_chart()
        assert len(chart.states) == 9
        assert tuple(s.name for s in chart.states) == WIPER_STATES

    def test_chart_is_about_seventy_blocks(self):
        assert 55 <= wiper_chart().block_count() <= 95

    def test_input_space_is_exhaustively_measurable(self):
        ranges = wiper_input_ranges()
        size = 1
        for value_range in ranges.values():
            size *= value_range.size()
        assert size == 3 * 2 * 2 * 9

    def test_generated_function_single_and_named_like_paper(self, wiper_code):
        assert [f.name for f in wiper_code.program.functions] == [WIPER_FUNCTION_NAME]

    def test_every_state_reachable_by_execution(self, wiper_code):
        board = EvaluationBoard(wiper_code.analyzed)
        seen_states = set()
        for state in range(9):
            for selector in range(3):
                for pump in range(2):
                    for end in range(2):
                        run = board.run(
                            WIPER_FUNCTION_NAME,
                            {
                                "wiper_state": state,
                                "speed_selector": selector,
                                "pump_button": pump,
                                "end_position": end,
                            },
                        )
                        seen_states.add(run.final_environment["wiper_state"])
        assert seen_states == set(range(9))

    def test_wiper_outputs_follow_selector(self, wiper_code):
        board = EvaluationBoard(wiper_code.analyzed)
        run = board.run(
            WIPER_FUNCTION_NAME,
            {"wiper_state": 0, "speed_selector": 2, "pump_button": 0, "end_position": 0},
        )
        assert run.final_environment["motor_speed"] == 2


class TestFigure1Workload:
    def test_expected_constants(self):
        analyzed = figure1_analyzed()
        cfg = build_cfg(analyzed.program.function("main"))
        assert len(cfg.real_blocks()) == EXPECTED_BASIC_BLOCKS
        assert count_ast_paths(analyzed.program.function("main")) == EXPECTED_TOTAL_PATHS


class TestOptimisationEvalWorkload:
    def test_variable_inventory_matches_paper(self):
        assert len(BOOLEAN_VARIABLES) == 4
        assert len(BYTE_VARIABLES) == 13

    def test_line_count_close_to_105(self):
        assert 80 <= source_line_count() <= 115

    def test_target_block_is_reachable_by_execution(self):
        analyzed = optimisation_eval_program()
        cfg = build_cfg(analyzed.program.function(EVAL_FUNCTION_NAME))
        target = find_target_block(cfg)
        board = EvaluationBoard(analyzed)
        run = board.run(
            EVAL_FUNCTION_NAME,
            {"sensor_temp": 100, "sensor_rpm": 60, "sensor_load": 90},
        )
        assert target in run.executed_blocks

    def test_missing_marker_call_raises(self):
        analyzed = optimisation_eval_program()
        cfg = build_cfg(analyzed.program.function(EVAL_FUNCTION_NAME))
        with pytest.raises(LookupError):
            find_target_block(cfg, "no_such_marker")


class TestSyntheticTargetLink:
    def test_small_application_matches_requested_size(self):
        app = generate_small_application(seed=7, target_blocks=120)
        assert 90 <= app.basic_blocks <= 160
        assert app.conditional_branches > 10

    def test_generation_is_deterministic(self):
        first = generate_small_application(seed=13, target_blocks=80)
        second = generate_small_application(seed=13, target_blocks=80)
        assert first.source == second.source

    def test_different_seeds_differ(self):
        first = generate_small_application(seed=1, target_blocks=80)
        second = generate_small_application(seed=2, target_blocks=80)
        assert first.source != second.source

    def test_generated_code_is_partitionable(self):
        from repro.partition import partition_function

        app = generate_small_application(seed=5, target_blocks=100)
        function = app.analyzed.program.function(app.function_name)
        for bound in (1, 4, 1000):
            result = partition_function(function, bound, app.cfg)
            result.validate(app.cfg)

    def test_generated_code_executes(self):
        app = generate_small_application(seed=9, target_blocks=80)
        board = EvaluationBoard(app.analyzed)
        run = board.run(app.function_name, {"u0": 1, "u1": 2})
        assert run.total_cycles > 0
