"""Tests of the dataflow analyses (liveness, reaching defs, ranges, relevance)."""

from __future__ import annotations

from repro.analysis import (
    Direction,
    DataflowProblem,
    analyze_ranges,
    analyze_ranges_reference,
    analyze_relevance,
    block_liveness,
    block_use_def,
    control_relevant_variables,
    live_range_conflicts,
    reaching_definitions,
    set_union,
    solve,
    statement_use_def,
    unused_variables,
)
from repro.cfg import build_cfg
from repro.minic import parse_and_analyze


def build(source: str, name: str = "f"):
    analyzed = parse_and_analyze(source)
    return analyzed, build_cfg(analyzed.program.function(name))


class TestDataflowFramework:
    def test_forward_reachability_toy_problem(self):
        nodes = [1, 2, 3, 4]
        edges = {1: [2, 3], 2: [4], 3: [4], 4: []}
        problem = DataflowProblem(
            nodes=nodes,
            successors=lambda n: edges[n],
            direction=Direction.FORWARD,
            boundary_nodes=[1],
            boundary=frozenset({"start"}),
            initial=frozenset(),
            join=set_union,
            transfer=lambda node, fact: fact | {f"n{node}"},
        )
        result = solve(problem)
        assert "start" in result.out_facts[4]
        assert "n2" in result.out_facts[4] or "n3" in result.out_facts[4]

    def test_backward_direction_inverts_flow(self):
        nodes = [1, 2, 3]
        edges = {1: [2], 2: [3], 3: []}
        problem = DataflowProblem(
            nodes=nodes,
            successors=lambda n: edges[n],
            direction=Direction.BACKWARD,
            boundary_nodes=[3],
            boundary=frozenset({"end"}),
            initial=frozenset(),
            join=set_union,
            transfer=lambda node, fact: fact,
        )
        result = solve(problem)
        assert "end" in result.out_facts[1]


class TestUseDef:
    def test_statement_use_def_assignment(self):
        analyzed = parse_and_analyze("int a; int b; void f(void) { a = b + 1; }")
        stmt = analyzed.program.function("f").body.statements[0]
        ud = statement_use_def(stmt)
        assert ud.uses == {"b"} and ud.defs == {"a"}

    def test_block_use_def_ordering(self):
        _, cfg = build("int a; int b; void f(void) { a = 1; b = a + 1; }")
        block = cfg.real_blocks()[0]
        ud = block_use_def(block)
        # `a` is defined before it is used, so it is not an upward-exposed use
        assert "a" not in ud.uses and ud.defs == {"a", "b"}

    def test_condition_counts_as_use(self):
        _, cfg = build("int a; void f(void) { if (a > 0) { a = 1; } }")
        cond_block = next(b for b in cfg.real_blocks() if b.terminator.condition is not None)
        assert "a" in block_use_def(cond_block).uses


class TestLiveness:
    SOURCE = """
    int x; int y; int z;
    void f(void) {
        x = 1;
        if (y > 0) {
            z = x + 1;
        } else {
            z = 2;
        }
        y = z;
    }
    """

    def test_live_out_of_definition_block(self):
        _, cfg = build(self.SOURCE)
        liveness = block_liveness(cfg)
        defining = next(
            b for b in cfg.real_blocks() if "x" in block_use_def(b).defs
        )
        assert "x" in liveness.live_out[defining.block_id]

    def test_dead_after_last_use(self):
        _, cfg = build(self.SOURCE)
        liveness = block_liveness(cfg)
        assert "x" not in liveness.live_in[cfg.exit.block_id]

    def test_unused_variable_detection(self):
        _, cfg = build("int used; int never; void f(void) { used = 1; if (used) { used = 2; } }")
        assert unused_variables(cfg, {"used", "never"}) == {"never"}

    def test_interference_between_simultaneously_live_variables(self):
        _, cfg = build(self.SOURCE)
        conflicts = live_range_conflicts(cfg)
        assert "y" in conflicts.get("x", set()) or "x" in conflicts.get("y", set())

    def test_non_overlapping_locals_do_not_interfere(self):
        source = """
        void f(void) {
            int first; int second; int out;
            first = 1;
            out = first + 1;
            second = 2;
            out = second + out;
        }
        """
        _, cfg = build(source)
        conflicts = live_range_conflicts(cfg)
        assert "second" not in conflicts.get("first", set())


class TestReachingDefinitions:
    def test_single_definition_reaches_use(self):
        _, cfg = build("int t; int r; void f(void) { t = 1; r = t + 1; }")
        result = reaching_definitions(cfg)
        defs_of_t = result.definitions_of("t")
        assert len(defs_of_t) == 1
        assert result.uses[defs_of_t[0]], "the definition of t must have a recorded use"

    def test_redefinition_kills_previous(self):
        _, cfg = build("int t; int r; void f(void) { t = 1; t = 2; r = t; }")
        result = reaching_definitions(cfg)
        first, second = sorted(result.definitions_of("t"), key=lambda d: d.statement_index)
        assert not result.uses[first]
        assert result.uses[second]

    def test_branch_merges_definitions(self):
        source = """
        int c; int t; int r;
        void f(void) {
            if (c) { t = 1; } else { t = 2; }
            r = t;
        }
        """
        _, cfg = build(source)
        result = reaching_definitions(cfg)
        used_defs = [d for d in result.definitions_of("t") if result.uses[d]]
        assert len(used_defs) == 2

    def test_condition_use_recorded_with_sentinel_index(self):
        _, cfg = build("int c; void f(void) { c = 1; if (c) { c = 2; } }")
        result = reaching_definitions(cfg)
        first_def = sorted(result.definitions_of("c"), key=lambda d: d.statement_index)[0]
        assert any(index == -1 for _, index in result.uses[first_def])


class TestRangeAnalysis:
    def test_input_range_from_pragma(self):
        analyzed, cfg = build(
            "#pragma input u\n#pragma range u 0 9\nint u; int r; "
            "void f(void) { r = u + 1; }"
        )
        result = analyze_ranges(cfg, analyzed.table("f"))
        assert result.global_ranges["u"].hi == 9
        assert result.global_ranges["r"].hi <= 10

    def test_constant_assignment_narrows_range(self):
        analyzed, cfg = build("int flag; void f(void) { flag = 0; if (flag) { flag = 1; } }")
        result = analyze_ranges(cfg, analyzed.table("f"))
        assert result.global_ranges["flag"].hi <= 1
        assert result.bits_for("flag") == 1

    def test_boolean_comparison_is_one_bit(self):
        analyzed, cfg = build(
            "#pragma input u\n#pragma range u 0 100\nint u; int b; "
            "void f(void) { b = u > 50; }"
        )
        result = analyze_ranges(cfg, analyzed.table("f"))
        assert result.bits_for("b") == 1

    def test_range_never_exceeds_type(self):
        analyzed, cfg = build("UInt8 x; void f(void) { x = x + 200; }")
        result = analyze_ranges(cfg, analyzed.table("f"))
        assert result.global_ranges["x"].hi <= 255
        assert result.global_ranges["x"].lo >= 0

    def test_loop_widening_terminates(self, small_loop_program):
        function = small_loop_program.program.function("accumulate")
        cfg = build_cfg(function)
        result = analyze_ranges(cfg, small_loop_program.table("accumulate"))
        assert "total" in result.global_ranges

    def test_total_state_bits_helper(self):
        analyzed, cfg = build("int a; int b; void f(void) { a = 1; b = 0; if (b) { a = 2; } }")
        result = analyze_ranges(cfg, analyzed.table("f"))
        assert result.total_state_bits(["a", "b"]) <= 32


class TestRangeAnalysisReferenceCrossCheck:
    """The cached-RPO fixpoint must match the seed-era iteration exactly."""

    @staticmethod
    def assert_equal_results(analyzed, function_name: str) -> None:
        cfg = build_cfg(analyzed.program.function(function_name))
        table = analyzed.table(function_name)
        optimised = analyze_ranges(cfg, table)
        reference = analyze_ranges_reference(cfg, table)
        assert optimised.global_ranges == reference.global_ranges
        assert set(optimised.block_entry) == set(reference.block_entry)
        for block_id, env in optimised.block_entry.items():
            assert env == reference.block_entry[block_id], f"block {block_id}"

    def test_branching_program(self, branching_program):
        self.assert_equal_results(branching_program, "classify")

    def test_loop_program_with_widening(self, small_loop_program):
        self.assert_equal_results(small_loop_program, "accumulate")

    def test_figure1(self, figure1):
        self.assert_equal_results(figure1, "main")

    def test_wiper_case_study(self, wiper_code, wiper_function_name):
        self.assert_equal_results(wiper_code.analyzed, wiper_function_name)


class TestRelevance:
    SOURCE = """
    #pragma input sensor
    int sensor;
    int threshold;
    int decision;
    int log_counter;
    int scratch;
    void f(void) {
        threshold = sensor + 1;
        log_counter = log_counter + 1;
        scratch = log_counter * 2;
        if (threshold > 10) {
            decision = 1;
        } else {
            decision = 0;
        }
    }
    """

    def test_condition_variables_are_relevant(self):
        _, cfg = build(self.SOURCE)
        relevant = control_relevant_variables(cfg)
        assert "threshold" in relevant
        assert "sensor" in relevant  # transitively through threshold

    def test_pure_data_variables_are_irrelevant(self):
        analyzed, cfg = build(self.SOURCE)
        all_vars = set(analyzed.table("f").variables)
        result = analyze_relevance(cfg, all_vars)
        assert "log_counter" in result.irrelevant
        assert "scratch" in result.irrelevant
        assert "decision" in result.irrelevant

    def test_keep_set_forces_relevance(self):
        analyzed, cfg = build(self.SOURCE)
        all_vars = set(analyzed.table("f").variables)
        result = analyze_relevance(cfg, all_vars, keep=frozenset({"log_counter"}))
        assert "log_counter" in result.relevant

    def test_removable_statements_only_touch_irrelevant_variables(self):
        analyzed, cfg = build(self.SOURCE)
        all_vars = set(analyzed.table("f").variables)
        result = analyze_relevance(cfg, all_vars)
        from repro.minic.folding import assigned_variables

        for stmt in result.removable_statements:
            targets = assigned_variables(stmt.expr) if hasattr(stmt, "expr") else {stmt.name}
            assert targets <= set(result.irrelevant)

    def test_eval_program_irrelevant_counters(self, eval_program, eval_function_name):
        from repro.workloads.optimisation_eval import CONTROL_FLOW_IRRELEVANT

        function = eval_program.program.function(eval_function_name)
        cfg = build_cfg(function)
        all_vars = set(eval_program.table(eval_function_name).variables)
        result = analyze_relevance(cfg, all_vars)
        for name in CONTROL_FLOW_IRRELEVANT:
            assert name in result.irrelevant
