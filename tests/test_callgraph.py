"""Tests of the interprocedural call-graph subsystem (:mod:`repro.callgraph`).

Graph-structure tests (extraction, resolution, cycles, fingerprints, waves)
run on tiny hand-written sources and never start the WCET pipeline.  The
end-to-end scheduling tests run the pipeline on the seeded call-chain
workload with a quick configuration; the ones that spawn a process pool
carry the ``interproc`` marker and stay bounded (<= 2 workers).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.callgraph import (
    DEFAULT_UNKNOWN_CALL_CYCLES,
    CallGraph,
    CalleeSummary,
    CalleeSummaryStore,
)
from repro.minic import called_names, parse_and_analyze
from repro.pipeline.analyzer import AnalyzerConfig, WcetAnalyzer
from repro.project import (
    Project,
    ProjectError,
    ProjectScheduler,
    ResultCache,
)
from repro.testgen import HybridOptions
from repro.workloads.multi import generate_call_chain_workload

QUICK_HYBRID = HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1)


def quick_config(**overrides) -> AnalyzerConfig:
    options = dict(path_bound=2, hybrid=QUICK_HYBRID, extra_random_vectors=5)
    options.update(overrides)
    return AnalyzerConfig(**options)


PREAMBLE = """\
#pragma input x
#pragma range x 0 3
UInt8 x;
Int16 out = 0;
"""


def project_of(**sources: str) -> Project:
    return Project.from_sources(
        {name.replace("_c", ".c"): PREAMBLE + body for name, body in sources.items()}
    )


# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def chain_workload():
    return generate_call_chain_workload(seed=2005)


@pytest.fixture(scope="module")
def chain_project(chain_workload):
    return Project.from_sources(chain_workload.sources)


@pytest.fixture(scope="module")
def chain_graph(chain_project):
    return CallGraph.from_project(chain_project)


@pytest.fixture(scope="module")
def chain_serial_report(chain_project):
    """One uncached interprocedural serial run shared by the assertions."""
    return ProjectScheduler(chain_project, config=quick_config()).run()


# ---------------------------------------------------------------------- #
class TestCallExtraction:
    def test_called_names_counts_sites_everywhere(self):
        analyzed = parse_and_analyze(
            PREAMBLE
            + """
Int16 probe(void) { return x; }
void helper(void) { out = out + 1; }
void f(void) {
    helper();
    if (x > 0) { helper(); }
    if (probe() > 0) { out = out + probe(); }
}
""",
            filename="calls.c",
        )
        counts = called_names(analyzed.program.function("f"))
        assert counts == {"helper": 2, "probe": 2}
        assert called_names(analyzed.program.function("helper")) == {}


class TestResolution:
    def test_same_unit_definition_wins_over_other_units(self):
        project = project_of(
            a_c="void helper(void) { out = out + 1; }\n"
            "void caller(void) { helper(); }\n",
            b_c="void helper(void) { out = out + 2; }\n",
        )
        graph = CallGraph.from_project(project)
        node = graph.node("a.c:caller")
        assert node.resolved == {"helper": "a.c:helper"}
        assert not node.ambiguous

    def test_unique_cross_unit_resolution(self):
        project = project_of(
            a_c="void caller(void) { helper(); }\n",
            b_c="void helper(void) { out = out + 2; }\n",
        )
        graph = CallGraph.from_project(project)
        assert graph.node("a.c:caller").resolved == {"helper": "b.c:helper"}
        assert graph.waves() == [["b.c:helper"], ["a.c:caller"]]

    def test_ambiguous_cross_unit_name_is_diagnosed_and_external(self):
        project = project_of(
            a_c="void caller(void) { helper(); }\n",
            b_c="void helper(void) { out = out + 2; }\n",
            c_c="void helper(void) { out = out + 3; }\n",
        )
        graph = CallGraph.from_project(project)
        node = graph.node("a.c:caller")
        assert node.resolved == {}
        assert node.ambiguous == ("helper",)
        kinds = {diag.kind for diag in graph.diagnostics}
        assert "ambiguous-callee" in kinds
        # the caller has no dependencies: one wave, no summaries to wait for
        assert graph.dependencies()["a.c:caller"] == ()

    def test_undefined_names_are_external(self):
        project = project_of(a_c="void caller(void) { runnable(); }\n")
        node = CallGraph.from_project(project).node("a.c:caller")
        assert node.external == ("runnable",)
        assert node.resolved == {}


class TestCyclesAndDiagnostics:
    def test_direct_recursion_detected(self):
        project = project_of(
            a_c="void rec(void) { if (x > 0) { rec(); } out = out + 1; }\n"
        )
        graph = CallGraph.from_project(project)
        assert graph.cycles() == [["a.c:rec"]]
        assert graph.cyclic_callee_names("a.c:rec") == ("rec",)
        assert any(d.kind == "direct-recursion" for d in graph.diagnostics)

    def test_mutual_recursion_cycle_named_in_diagnostics(self):
        project = project_of(
            a_c="void ping(void) { if (x > 0) { pong(); } }\n"
            "void pong(void) { if (x > 1) { ping(); } }\n"
        )
        graph = CallGraph.from_project(project)
        assert graph.cycles() == [["a.c:ping", "a.c:pong"]]
        messages = [d.message for d in graph.diagnostics if d.kind == "call-cycle"]
        assert messages and all(
            "a.c:ping" in message and "a.c:pong" in message for message in messages
        )
        # intra-cycle edges are dropped: both schedule on the same single wave
        assert graph.dependencies() == {"a.c:ping": (), "a.c:pong": ()}
        assert graph.waves() == [["a.c:ping", "a.c:pong"]]


class TestChainGraphShape:
    def test_waves_order_callees_before_callers(self, chain_graph):
        waves = chain_graph.waves()
        assert waves[0] == ["unit_0.c:chain_leaf", "unit_1.c:solo_task"]
        position = {
            name: index for index, wave in enumerate(waves) for name in wave
        }
        for edge in chain_graph.edges():
            assert position[edge.callee] < position[edge.caller]
        # the 3-deep chain forces at least 4 waves
        assert len(waves) >= 4

    def test_diamond_resolves_to_shared_leaf(self, chain_graph):
        left = chain_graph.node("unit_0.c:diamond_left")
        right = chain_graph.node("unit_0.c:diamond_right")
        assert left.resolved["chain_leaf"] == "unit_0.c:chain_leaf"
        assert right.resolved["chain_leaf"] == "unit_0.c:chain_leaf"

    def test_cross_unit_calls_resolve(self, chain_graph):
        helper = chain_graph.node("unit_1.c:local_helper")
        assert helper.resolved == {"chain_top": "unit_0.c:chain_top"}

    def test_closure_expands_to_transitive_callees(self, chain_graph):
        names = [f.qualified_name for f in chain_graph.closure(["task_0"])]
        assert names == [
            "unit_0.c:chain_leaf",
            "unit_0.c:chain_mid",
            "unit_0.c:chain_top",
            "unit_0.c:diamond_left",
            "unit_0.c:diamond_right",
            "unit_0.c:task_0",
        ]
        with pytest.raises(ProjectError):
            chain_graph.closure(["no_such_function"])

    def test_report_exports(self, chain_graph):
        payload = chain_graph.to_dict()
        assert len(payload["functions"]) == 9
        assert payload["cycles"] == []
        text = chain_graph.to_text()
        assert "wave 0" in text and "unit_0.c:chain_leaf" in text


class TestTransitiveFingerprints:
    def edited_leaf_sources(self, chain_workload) -> dict[str, str]:
        sources = dict(chain_workload.sources)
        head, rest = sources["unit_0.c"].split("void chain_mid", 1)
        edited_head = head.replace("acc = acc + ", "acc = acc + 1 + ", 1)
        assert edited_head != head
        sources["unit_0.c"] = edited_head + "void chain_mid" + rest
        return sources

    def test_leaf_edit_changes_exactly_transitive_callers(
        self, chain_workload, chain_graph
    ):
        edited = CallGraph.from_project(
            Project.from_sources(self.edited_leaf_sources(chain_workload))
        )
        before = chain_graph.transitive_fingerprints()
        after = edited.transitive_fingerprints()
        changed = {name for name in before if before[name] != after[name]}
        # every function except the call-free solo_task reaches chain_leaf
        assert changed == set(before) - {"unit_1.c:solo_task"}

    def test_sibling_edit_does_not_touch_leaf_or_solo(
        self, chain_workload, chain_graph
    ):
        sources = dict(chain_workload.sources)
        head, middle, rest = sources["unit_0.c"].partition("void diamond_left")
        edited_rest = rest.replace("acc = acc + ", "acc = acc + 2 + ", 1)
        assert edited_rest != rest
        sources["unit_0.c"] = head + middle + edited_rest
        edited = CallGraph.from_project(Project.from_sources(sources))
        before = chain_graph.transitive_fingerprints()
        after = edited.transitive_fingerprints()
        changed = {name for name in before if before[name] != after[name]}
        assert changed == {"unit_0.c:diamond_left", "unit_0.c:task_0"}

    def test_new_definition_for_external_name_rekeys_caller(self):
        caller = "void caller(void) { helper(); }\n"
        one = CallGraph.from_project(project_of(a_c=caller))
        two = CallGraph.from_project(
            project_of(a_c=caller, b_c="void helper(void) { out = out + 1; }\n")
        )
        assert (
            one.transitive_fingerprints()["a.c:caller"]
            != two.transitive_fingerprints()["a.c:caller"]
        )

    def test_unknown_call_cycles_rekeys_ambiguous_callers(self):
        """The pessimistic charge enters ambiguous callers' cache identity."""
        project = project_of(
            a_c="void caller(void) { helper(); }\n",
            b_c="void helper(void) { out = out + 2; }\n",
            c_c="void helper(void) { out = out + 3; }\n",
        )
        graph = CallGraph.from_project(project)
        low = graph.transitive_fingerprints(unknown_call_cycles=100)
        high = graph.transitive_fingerprints(unknown_call_cycles=200)
        assert low["a.c:caller"] != high["a.c:caller"]
        assert low["b.c:helper"] == high["b.c:helper"]

    def test_unknown_call_cycles_only_rekeys_cyclic_functions(self):
        project = project_of(
            a_c="void rec(void) { if (x > 0) { rec(); } }\n"
            "void plain(void) { out = out + 1; }\n"
        )
        graph = CallGraph.from_project(project)
        low = graph.transitive_fingerprints(unknown_call_cycles=100)
        high = graph.transitive_fingerprints(unknown_call_cycles=200)
        assert low["a.c:rec"] != high["a.c:rec"]
        assert low["a.c:plain"] == high["a.c:plain"]


class TestCalleeSummaryStore:
    def test_bounds_for_prefers_summaries_and_falls_back(self):
        store = CalleeSummaryStore()
        store.add(
            CalleeSummary(
                qualified_name="u.c:leaf", call_name="leaf", wcet_bound_cycles=57
            )
        )
        bounds = store.bounds_for(
            {"leaf": "u.c:leaf", "missing": "u.c:missing", "self": "u.c:self"},
            cyclic_names=("self",),
            unknown_call_cycles=999,
        )
        assert bounds == {"leaf": 57, "missing": 999, "self": 999}


# ---------------------------------------------------------------------- #
class TestSchedulerCycleError:
    def test_waves_error_names_functions_on_cycle(self, chain_project):
        scheduler = ProjectScheduler(chain_project, config=quick_config())
        jobs = scheduler.jobs()
        by_name = {job.function.name: job for job in jobs}
        # manufacture a dependency cycle task_0 -> chain_leaf -> task_0
        by_name["chain_leaf"].deps = (by_name["task_0"].job_id,)
        with pytest.raises(ProjectError) as error:
            ProjectScheduler._waves(jobs)
        message = str(error.value)
        assert "dependency cycle" in message
        assert "unit_0.c:chain_leaf" in message
        assert "unit_0.c:task_0" in message


# ---------------------------------------------------------------------- #
class TestInterproceduralScheduling:
    def test_callees_analysed_before_callers_with_summary_reuse(
        self, chain_serial_report
    ):
        report = chain_serial_report
        assert not report.failures
        assert report.waves == 5
        assert report.all_safe
        by_name = {summary.function: summary for summary in report.functions}
        # caller bounds charge the exact bounds computed for their callees
        assert by_name["chain_mid"].callee_bounds_used == {
            "chain_leaf": by_name["chain_leaf"].wcet_bound_cycles
        }
        assert by_name["task_0"].callee_bounds_used == {
            "chain_top": by_name["chain_top"].wcet_bound_cycles,
            "diamond_left": by_name["diamond_left"].wcet_bound_cycles,
            "diamond_right": by_name["diamond_right"].wcet_bound_cycles,
        }
        assert by_name["task_0"].summarised_call_sites == 3
        # a caller is at least as expensive as its most expensive callee
        assert (
            by_name["task_0"].wcet_bound_cycles
            > by_name["chain_top"].wcet_bound_cycles
        )
        assert report.summary_reuse_calls == sum(
            s.summarised_call_sites for s in report.functions
        )
        assert report.callgraph is not None
        assert report.callgraph["cycles"] == []

    def test_summary_bound_strictly_tighter_than_unknown_fallback(
        self, chain_project, chain_serial_report
    ):
        by_name = {s.function: s for s in chain_serial_report.functions}
        pessimistic = {
            name: DEFAULT_UNKNOWN_CALL_CYCLES
            for name in ("chain_top", "diamond_left", "diamond_right")
        }
        fallback = WcetAnalyzer(
            chain_project.unit("unit_0.c").analyzed,
            "task_0",
            quick_config(),
            callee_bounds=pessimistic,
        ).analyze()
        assert (
            by_name["task_0"].wcet_bound_cycles < fallback.wcet_bound_cycles
        )

    def test_only_filter_closes_over_callees(self, chain_project):
        report = ProjectScheduler(
            chain_project, config=quick_config(), only=["chain_mid"]
        ).run()
        assert [s.function for s in report.functions] == [
            "chain_leaf",
            "chain_mid",
        ]
        assert report.waves == 2

    def test_recursive_function_completes_with_pessimistic_charge(self):
        project = project_of(
            a_c="void rec(void) { if (x > 0) { rec(); } out = out + 1; }\n"
        )
        # exhaustive end-to-end stays at its default: the scheduler must
        # disable it automatically for jobs on a recursion cycle (real
        # recursion would only die against the interpreter's step budget)
        report = ProjectScheduler(
            project, config=quick_config(), unknown_call_cycles=500
        ).run()
        assert not report.failures
        summary = report.functions[0]
        assert summary.callee_bounds_used == {"rec": 500}
        assert summary.measured_wcet_cycles is None
        # the nested self-call is charged the pessimistic 500-cycle bound
        assert summary.wcet_bound_cycles > 500
        # a pessimistic charge is not a reused summary: the metric stays 0
        assert summary.summarised_call_sites == 0
        assert report.summary_reuse_calls == 0

    def test_ambiguous_callee_charged_pessimistically(self):
        project = project_of(
            a_c="void caller(void) { helper(); }\n",
            b_c="void helper(void) { out = out + 2; }\n",
            c_c="void helper(void) { out = out + 3; }\n",
        )
        report = ProjectScheduler(
            project, config=quick_config(), unknown_call_cycles=777
        ).run()
        assert not report.failures
        caller = next(s for s in report.functions if s.function == "caller")
        assert caller.callee_bounds_used == {"helper": 777}
        assert caller.wcet_bound_cycles > 777


class TestSummarisationSafety:
    def test_value_used_callee_is_inlined_not_stubbed(self):
        project = project_of(
            a_c="Int16 helper(void) { return x; }\n"
            "void caller(void) { if (helper() > 0) { out = out + 2; } }\n"
        )
        graph = CallGraph.from_project(project)
        assert graph.node("a.c:caller").unsummarisable == ("helper",)
        assert any(d.kind == "inlined-callee" for d in graph.diagnostics)

        report = ProjectScheduler(project, config=quick_config()).run()
        assert not report.failures
        caller = next(s for s in report.functions if s.function == "caller")
        # the callee is inlined on the caller's board, never summary-charged
        assert caller.callee_bounds_used == {}
        assert caller.safe

    def test_transitive_global_coupling_is_inlined(self):
        project = project_of(
            a_c="Int16 shared = 0;\n"
            "void leaf(void) { shared = shared + 1; }\n"
            "void mid(void) { leaf(); }\n"
            "void caller(void) { mid(); if (shared > 0) { out = out + 1; } }\n"
        )
        graph = CallGraph.from_project(project)
        # caller reads 'shared', which mid writes transitively through leaf
        assert graph.node("a.c:caller").unsummarisable == ("mid",)
        # mid itself reads nothing leaf writes: its edge stays summarisable
        assert graph.node("a.c:mid").unsummarisable == ()

    def test_callee_reading_caller_written_global_is_inlined(self):
        """The other coupling direction: the callee's standalone summary was
        measured without the caller's writes, so it must be inlined too."""
        project = project_of(
            a_c="Int16 gate = 0;\n"
            "void leaf(void) { if (gate > 0) { out = out + 5; } }\n"
            "void caller(void) { gate = x; leaf(); }\n"
        )
        graph = CallGraph.from_project(project)
        assert graph.node("a.c:caller").unsummarisable == ("leaf",)
        messages = [
            d.message for d in graph.diagnostics if d.kind == "inlined-callee"
        ]
        assert any(
            "reads global(s) the caller or a sibling callee writes" in m
            for m in messages
        )

    def test_caller_of_recursive_callee_completes(self):
        """Exhaustive verification is auto-disabled for the whole recursion
        closure, not just the cycle members themselves."""
        project = project_of(
            a_c="void rec(void) { if (x > 0) { rec(); } }\n"
            "void caller(void) { rec(); out = out + 1; }\n"
        )
        report = ProjectScheduler(
            project, config=quick_config(), unknown_call_cycles=300
        ).run()
        assert not report.failures
        by_name = {s.function: s for s in report.functions}
        assert by_name["rec"].measured_wcet_cycles is None
        assert by_name["caller"].measured_wcet_cycles is None
        # the caller still charges rec's computed summary bound
        assert by_name["caller"].callee_bounds_used == {
            "rec": by_name["rec"].wcet_bound_cycles
        }

    def test_sibling_callee_coupling_is_inlined(self):
        """setter(); reader(); coupled through a global the caller never
        mentions: both edges must be inlined."""
        project = project_of(
            a_c="Int16 g = 0;\n"
            "void setter(void) { g = x; }\n"
            "void reader(void) { if (g > 0) { out = out + 5; } }\n"
            "void caller(void) { setter(); reader(); }\n"
        )
        graph = CallGraph.from_project(project)
        assert graph.node("a.c:caller").unsummarisable == ("reader", "setter")
        # standalone, neither helper couples with anything
        assert graph.node("a.c:setter").unsummarisable == ()
        assert graph.node("a.c:reader").unsummarisable == ()

    def test_value_used_recursive_call_is_diagnosed(self):
        project = project_of(
            a_c="Int16 rec(void) { if (x > 0) { out = out + rec(); } return x; }\n"
        )
        graph = CallGraph.from_project(project)
        assert any(d.kind == "unsound-recursion" for d in graph.diagnostics)

    def test_waves_use_scheduler_dependency_depth_for_cycles(self):
        """Mutual-recursion members place by dep depth, matching the
        executed schedule (intra-cycle edges dropped)."""
        project = project_of(
            a_c="void leaf(void) { out = out + 1; }\n"
            "void ping(void) { if (x > 0) { pong(); } }\n"
            "void pong(void) { if (x > 1) { ping(); } leaf(); }\n"
        )
        graph = CallGraph.from_project(project)
        assert graph.waves() == [["a.c:leaf", "a.c:ping"], ["a.c:pong"]]

    def test_coupled_recursive_callee_keeps_stub_and_is_diagnosed(self):
        """A coupled callee that reaches recursion cannot be inlined (the
        measurement board would run real, non-terminating recursion): the
        summary stub stays and an unsound-recursion diagnostic is raised."""
        project = project_of(
            a_c="Int16 g = 0;\n"
            "void rec(void) { g = g + 1; if (x > 0) { rec(); } }\n"
            "void caller(void) { rec(); out = out + g; }\n"
        )
        graph = CallGraph.from_project(project)
        assert graph.node("a.c:caller").unsummarisable == ()
        assert any(d.kind == "unsound-recursion" for d in graph.diagnostics)
        report = ProjectScheduler(
            project, config=quick_config(), unknown_call_cycles=400
        ).run()
        assert not report.failures

    def test_inlined_callee_keeps_inner_interprocedural_charges(self):
        """Calls made inside an inlined body charge exactly what they did in
        the callee's standalone analysis, not the default external cost."""
        project = project_of(
            a_c="Int16 g = 0;\n"
            "void mid(void) { g = x; helper(); }\n"
            "void caller(void) { mid(); out = out + g; }\n",
            b_c="void helper(void) { if (x > 1) { out = out + 3; } }\n",
        )
        graph = CallGraph.from_project(project)
        assert graph.node("a.c:caller").unsummarisable == ("mid",)
        report = ProjectScheduler(project, config=quick_config()).run()
        assert not report.failures
        by_name = {s.function: s for s in report.functions}
        # mid itself is inlined (absent), but helper's summary rides along
        assert "mid" not in by_name["caller"].callee_bounds_used
        assert by_name["caller"].callee_bounds_used == {
            "helper": by_name["helper"].wcet_bound_cycles
        }

    def test_value_use_inside_inlined_body_unstubs_the_shared_callee(self):
        """b is inlined into a and uses probe's return value; a also calls
        probe as a statement.  probe must not be stubbed on a's board, or
        b's inlined control flow would see the stub's 0."""
        project = project_of(
            a_c="Int16 g = 0;\n"
            "Int16 probe(void) { return x; }\n"
            "void b(void) { g = x; if (probe() > 0) { out = out + 3; } }\n"
            "void a(void) { probe(); b(); out = out + g; }\n"
        )
        graph = CallGraph.from_project(project)
        assert graph.node("a.c:b").unsummarisable == ("probe",)
        assert graph.node("a.c:a").unsummarisable == ("b",)
        report = ProjectScheduler(project, config=quick_config()).run()
        assert not report.failures
        a_summary = next(s for s in report.functions if s.function == "a")
        # neither b (inlined directly) nor probe (inline demanded by b's
        # body) may appear in a's stub charges
        assert a_summary.callee_bounds_used == {}

    def test_same_name_globals_in_other_units_do_not_alias(self):
        """Units have disjoint globals: a cross-unit callee writing its own
        'shared' must not force inlining of a caller reading another one."""
        project = project_of(
            a_c="Int16 shared = 0;\n"
            "void mid(void) { faraway(); }\n"
            "void caller(void) { mid(); out = out + shared; }\n",
            b_c="Int16 shared = 0;\n"
            "void faraway(void) { shared = shared + 1; }\n",
        )
        graph = CallGraph.from_project(project)
        assert graph.node("a.c:caller").unsummarisable == ()
        assert graph.node("a.c:mid").unsummarisable == ()

    def test_chain_workload_stays_fully_summarisable(self, chain_graph):
        assert all(not node.unsummarisable for node in chain_graph.nodes())

    def test_workload_rejects_unsupported_unit_counts(self):
        with pytest.raises(ValueError):
            generate_call_chain_workload(seed=1, units=3)
        with pytest.raises(ValueError):
            generate_call_chain_workload(seed=1, units=0)

    def test_cached_run_and_transitive_invalidation(
        self, chain_workload, chain_project, chain_serial_report, tmp_path: Path
    ):
        cache_dir = tmp_path / "cache"
        first = ProjectScheduler(
            chain_project, config=quick_config(), cache=ResultCache(cache_dir)
        ).run()
        assert (first.cache_hits, first.cache_misses) == (0, 9)
        assert first.function_payloads() == chain_serial_report.function_payloads()

        # a second identical run hits the cache for every function
        second = ProjectScheduler(
            chain_project, config=quick_config(), cache=ResultCache(cache_dir)
        ).run()
        assert (second.cache_hits, second.cache_misses) == (9, 0)
        assert all(summary.from_cache for summary in second.functions)
        assert second.function_payloads() == first.function_payloads()

        # editing the leaf re-analyses it plus every transitive caller --
        # which in this topology is everything except the call-free solo_task
        sources = TestTransitiveFingerprints().edited_leaf_sources(chain_workload)
        third = ProjectScheduler(
            Project.from_sources(sources),
            config=quick_config(),
            cache=ResultCache(cache_dir),
        ).run()
        warm = sorted(s.function for s in third.functions if s.from_cache)
        assert warm == ["solo_task"]
        assert (third.cache_hits, third.cache_misses) == (1, 8)

    def test_sibling_edit_invalidates_only_its_callers(
        self, chain_workload, chain_project, tmp_path: Path
    ):
        cache_dir = tmp_path / "cache"
        ProjectScheduler(
            chain_project, config=quick_config(), cache=ResultCache(cache_dir)
        ).run()
        sources = dict(chain_workload.sources)
        head, middle, rest = sources["unit_0.c"].partition("void diamond_left")
        edited_rest = rest.replace("acc = acc + ", "acc = acc + 2 + ", 1)
        assert edited_rest != rest
        sources["unit_0.c"] = head + middle + edited_rest
        report = ProjectScheduler(
            Project.from_sources(sources),
            config=quick_config(),
            cache=ResultCache(cache_dir),
        ).run()
        missed = sorted(s.function for s in report.functions if not s.from_cache)
        assert missed == ["diamond_left", "task_0"]


# ---------------------------------------------------------------------- #
@pytest.mark.interproc
class TestInterproceduralParallel:
    def test_jobs2_matches_serial_bit_for_bit(
        self, chain_project, chain_serial_report
    ):
        scheduler = ProjectScheduler(
            chain_project, config=quick_config(), workers=2
        )
        parallel = scheduler.run()
        assert not parallel.failures
        assert (
            parallel.function_payloads()
            == chain_serial_report.function_payloads()
        )

    def test_parallel_cache_feeds_serial_rerun(
        self, chain_project, chain_serial_report, tmp_path: Path
    ):
        cache_dir = tmp_path / "cache"
        parallel = ProjectScheduler(
            chain_project,
            config=quick_config(),
            cache=ResultCache(cache_dir),
            workers=2,
        ).run()
        assert (parallel.cache_hits, parallel.cache_misses) == (0, 9)
        rerun = ProjectScheduler(
            chain_project, config=quick_config(), cache=ResultCache(cache_dir)
        ).run()
        assert (rerun.cache_hits, rerun.cache_misses) == (9, 0)
        assert rerun.function_payloads() == chain_serial_report.function_payloads()


# ---------------------------------------------------------------------- #
class TestSchedulerFallbackReason:
    def test_pool_create_failure_is_recorded_not_fatal(
        self, chain_project, monkeypatch
    ):
        import concurrent.futures

        def refuse(*args, **kwargs):
            raise OSError("fork denied by sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", refuse
        )
        scheduler = ProjectScheduler(
            chain_project, config=quick_config(), workers=2
        )
        report = scheduler.run()
        assert not report.failures
        assert report.mode == "serial-fallback"
        assert report.fallback_reason is not None
        assert "pool-create-failed" in report.fallback_reason
        assert "fork denied by sandbox" in report.fallback_reason
        assert report.to_dict()["execution"]["fallback_reason"] == report.fallback_reason


# ---------------------------------------------------------------------- #
class TestCallGraphCli:
    def test_demo_calls_prints_graph_and_waves(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            [
                "project",
                "--demo-calls",
                "--no-cache",
                "--bound",
                "2",
                "--call-graph",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Call graph: 9 function(s)" in output
        assert "wave 0" in output
        assert "callee summaries reused" in output
        assert "5 wave(s)" in output

    def test_demo_calls_excludes_files_and_demo(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["project", "--demo", "--demo-calls"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_call_graph_flag_in_flat_mode_prints_note(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main(
            [
                "project",
                "--demo",
                "--no-cache",
                "--bound",
                "2",
                "--no-interprocedural",
                "--call-graph",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Call graph" not in captured.out
        assert "no effect" in captured.err
