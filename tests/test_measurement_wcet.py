"""Tests of the measurement subsystem and the WCET bound computation."""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg
from repro.hw import EvaluationBoard
from repro.measurement import MeasurementDatabase, MeasurementRunner, SegmentMeasurement
from repro.minic import parse_and_analyze
from repro.partition import build_instrumentation_plan, partition_function
from repro.wcet import (
    EndToEndResult,
    InputSpaceTooLarge,
    TimingSchema,
    WcetComputationError,
    WcetReport,
    enumerate_input_space,
    exhaustive_end_to_end,
    measure_vectors,
)
from repro.minic.types import IntRange


@pytest.fixture()
def figure1_setup(figure1, figure1_cfg):
    board = EvaluationBoard(figure1)
    partition = partition_function(figure1.program.function("main"), 2, figure1_cfg)
    plan = build_instrumentation_plan(partition, figure1_cfg)
    runner = MeasurementRunner(board, "main", partition, plan, figure1_cfg)
    return board, partition, plan, runner


class TestMeasurementDatabase:
    def test_statistics_aggregate(self):
        database = MeasurementDatabase()
        database.add(SegmentMeasurement(segment_id=1, path=(1, 2), cycles=10))
        database.add(SegmentMeasurement(segment_id=1, path=(1, 3), cycles=30))
        database.add(SegmentMeasurement(segment_id=1, path=(1, 2), cycles=20))
        stats = database.statistics(1)
        assert stats.max_cycles == 30
        assert stats.min_cycles == 10
        assert stats.observations == 3
        assert stats.observed_path_count == 2
        assert database.max_cycles(1) == 30

    def test_worst_inputs_tracked(self):
        database = MeasurementDatabase()
        database.add(SegmentMeasurement(segment_id=0, path=(), cycles=5, inputs={"i": 1}))
        database.add(SegmentMeasurement(segment_id=0, path=(), cycles=9, inputs={"i": 0}))
        assert database.statistics(0).worst_inputs == {"i": 0}

    def test_unmeasured_segment_queries(self):
        database = MeasurementDatabase()
        assert database.max_cycles(7) is None
        assert database.unmeasured_segments([1, 2]) == [1, 2]
        assert database.observed_paths(3) == set()


class TestMeasurementRunner:
    def test_both_inputs_measure_every_segment(self, figure1_setup):
        board, partition, plan, runner = figure1_setup
        database = MeasurementDatabase()
        campaign = runner.run_vectors([{"i": 0}, {"i": 1}], database)
        assert campaign.runs == 2
        # every segment is observed at least once ...
        assert not database.unmeasured_segments([s.segment_id for s in partition.segments])
        # ... but full *path* coverage is impossible: the printf5 path of the
        # inner-if region is infeasible (it needs i == 0 and i != 0 at once)
        assert not runner.fully_covered(database)
        region = next(s for s in partition.segments if len(s.block_ids) > 1)
        observed, required = runner.coverage(database)[region.segment_id]
        assert (observed, required) == (1, 2)

    def test_single_input_leaves_paths_uncovered(self, figure1_setup):
        board, partition, plan, runner = figure1_setup
        database = MeasurementDatabase()
        runner.run_vectors([{"i": 1}], database)
        assert not runner.fully_covered(database)

    def test_segment_times_sum_close_to_total(self, figure1_setup):
        """Per-segment times of one run must sum to (almost) the end-to-end time."""
        board, partition, plan, runner = figure1_setup
        instrumented = board.run_instrumented("main", {"i": 0}, plan)
        measurements = runner.extract_measurements(instrumented, {"i": 0})
        covered = sum(m.cycles for m in measurements)
        assert covered <= instrumented.run.total_cycles
        assert covered >= instrumented.run.total_cycles * 0.8

    def test_measurement_paths_stay_inside_segment(self, figure1_setup):
        board, partition, plan, runner = figure1_setup
        instrumented = board.run_instrumented("main", {"i": 0}, plan)
        for measurement in runner.extract_measurements(instrumented, {"i": 0}):
            segment = partition.segment(measurement.segment_id)
            assert set(measurement.path) <= set(segment.block_ids)

    def test_coverage_report_structure(self, figure1_setup):
        _, partition, _, runner = figure1_setup
        database = MeasurementDatabase()
        report = runner.coverage(database)
        assert set(report) == {s.segment_id for s in partition.segments}


class TestTimingSchema:
    def test_bound_is_safe_for_figure1(self, figure1, figure1_cfg, figure1_setup):
        board, partition, plan, runner = figure1_setup
        database = MeasurementDatabase()
        runner.run_vectors([{"i": 0}, {"i": 1}], database)
        bound = TimingSchema(figure1_cfg, partition).compute(database)
        worst_observed = max(
            board.run("main", {"i": value}).total_cycles for value in (0, 1)
        )
        assert bound.bound_cycles >= worst_observed

    def test_missing_measurement_raises(self, figure1, figure1_cfg, figure1_setup):
        _, partition, _, _ = figure1_setup
        database = MeasurementDatabase()
        with pytest.raises(WcetComputationError):
            TimingSchema(figure1_cfg, partition).compute(database)

    def test_unreachable_segments_contribute_zero(self, figure1, figure1_cfg, figure1_setup):
        board, partition, plan, runner = figure1_setup
        database = MeasurementDatabase()
        runner.run_vectors([{"i": 0}, {"i": 1}], database)
        # pretend one segment is infeasible: removing its measurements and
        # declaring it unreachable must not raise
        victim = partition.segments[-1].segment_id
        clean = MeasurementDatabase()
        for measurement in database.measurements():
            if measurement.segment_id != victim:
                clean.add(measurement)
        bound = TimingSchema(figure1_cfg, partition).compute(
            clean, unreachable_segments={victim}
        )
        assert bound.bound_cycles > 0

    def test_critical_path_segments_are_flagged(self, figure1, figure1_cfg, figure1_setup):
        board, partition, plan, runner = figure1_setup
        database = MeasurementDatabase()
        runner.run_vectors([{"i": 0}, {"i": 1}], database)
        bound = TimingSchema(figure1_cfg, partition).compute(database)
        assert bound.critical_segments
        for segment_id in bound.critical_segments:
            assert bound.contribution(segment_id).on_critical_path

    def test_loop_iteration_factors(self, small_loop_program):
        function = small_loop_program.program.function("accumulate")
        cfg = build_cfg(function)
        partition = partition_function(function, 1, cfg)
        board = EvaluationBoard(small_loop_program)
        plan = build_instrumentation_plan(partition, cfg)
        runner = MeasurementRunner(board, "accumulate", partition, plan, cfg)
        database = MeasurementDatabase()
        runner.run_vectors([{"n": value} for value in range(0, 11)], database)
        bound = TimingSchema(cfg, partition, default_loop_bound=10).compute(database)
        worst = max(
            board.run("accumulate", {"n": value}).total_cycles for value in range(0, 11)
        )
        assert bound.bound_cycles >= worst


class TestEndToEnd:
    def test_enumerate_input_space(self):
        vectors = enumerate_input_space({"a": IntRange(0, 1), "b": IntRange(0, 2)})
        assert len(vectors) == 6

    def test_enumeration_limit(self):
        with pytest.raises(InputSpaceTooLarge):
            enumerate_input_space({"x": IntRange(0, 10**7)}, limit=1000)

    def test_exhaustive_measurement_finds_worst_case(self, figure1):
        board = EvaluationBoard(figure1)
        result = exhaustive_end_to_end(board, "main", {"i": IntRange(0, 1)})
        assert result.runs == 2
        assert result.worst_inputs == {"i": 0}
        assert result.max_cycles > result.min_cycles

    def test_measure_vectors_requires_input(self, figure1):
        board = EvaluationBoard(figure1)
        with pytest.raises(ValueError):
            measure_vectors(board, "main", [])

    def test_spread(self):
        result = EndToEndResult(function_name="f", runs=2, max_cycles=10, min_cycles=4)
        assert result.spread == 6


class TestWcetReport:
    def test_report_text_and_ratios(self, figure1, figure1_cfg, figure1_setup):
        board, partition, plan, runner = figure1_setup
        database = MeasurementDatabase()
        runner.run_vectors([{"i": 0}, {"i": 1}], database)
        bound = TimingSchema(figure1_cfg, partition).compute(database)
        end_to_end = exhaustive_end_to_end(board, "main", {"i": IntRange(0, 1)})
        report = WcetReport(
            function_name="main",
            path_bound=2,
            partition=partition,
            bound=bound,
            database=database,
            end_to_end=end_to_end,
            test_vectors_used=2,
        )
        assert report.is_safe()
        assert report.overestimation_ratio >= 1.0
        text = report.to_text()
        assert "WCET bound" in text and "main" in text
