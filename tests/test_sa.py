"""Static-analysis tests: feasibility, loop bounds, diagnostics, soundness.

The heart of this file is the *differential* suite: every edge/block the
static analysis calls infeasible is checked against the model checker on
the optimised model, and the prefiltered query engine must return verdicts
bit-identical to the unfiltered one.  Soundness is the whole contract --
a single disagreement here is a bug in :mod:`repro.sa`, never in the MC.
"""

from __future__ import annotations

import pytest

from repro.cfg import EdgeKind, build_cfg
from repro.mc import ModelChecker, ModelCheckerOptions, Verdict
from repro.mc.property import GoalBuilder
from repro.mc.query import QueryBudget, QueryEngine, QueryEngineOptions
from repro.minic import parse_and_analyze
from repro.optim.pipeline import OptimizationConfig, build_optimized_model
from repro.pipeline.analyzer import AnalyzerConfig, WcetAnalyzer
from repro.sa import (
    StaticPrefilter,
    analyze_feasibility,
    diagnose,
    infer_loop_bounds,
    max_severity,
    render_diagnostics,
    run_static_analysis,
)
from repro.testgen.hybrid import HybridOptions
from repro.workloads.multi import (
    generate_call_chain_workload,
    generate_multi_function_workload,
)
from repro.workloads.targetlink import generate_small_application

pytestmark = pytest.mark.sa


def analyzed_function(body: str, header: str = "void f(void)", prelude: str = ""):
    analyzed = parse_and_analyze(f"{prelude}\n{header} {{ {body} }}")
    cfg = build_cfg(analyzed.program.function("f"))
    return cfg, analyzed.table("f")


def feasibility_of(body: str, **kwargs):
    cfg, table = analyzed_function(body, **kwargs)
    return cfg, table, analyze_feasibility(cfg, table)


# ---------------------------------------------------------------------- #
# feasibility unit tests
# ---------------------------------------------------------------------- #
class TestFeasibility:
    def test_constant_false_branch_prunes_true_edge(self):
        cfg, _, result = feasibility_of("int a; a = 1; if (a > 5) { a = 2; }")
        kinds = {kind for _, _, kind in result.infeasible_edges}
        assert EdgeKind.TRUE.value in kinds
        assert result.unreachable_blocks

    def test_constant_true_branch_prunes_false_edge(self):
        cfg, _, result = feasibility_of("int a; a = 1; if (a < 5) { a = 2; }")
        kinds = {kind for _, _, kind in result.infeasible_edges}
        assert EdgeKind.FALSE.value in kinds

    def test_input_dependent_branch_is_not_pruned(self):
        cfg, _, result = feasibility_of(
            "if (x > 0) { y = 1; } else { y = 2; }",
            header="void f(int x)",
            prelude="int y;",
        )
        assert not result.infeasible_edges
        assert not result.unreachable_blocks

    def test_refinement_chains_through_nested_branches(self):
        # inside the x < 3 arm, x > 7 can never hold
        cfg, _, result = feasibility_of(
            "int a; a = 0; if (x < 3) { if (x > 7) { a = 1; } }",
            header="void f(int x)",
        )
        assert result.unreachable_blocks

    def test_pragma_input_range_enables_pruning(self):
        # the declared range [0,3] makes the > 100 arm dead
        cfg, _, result = feasibility_of(
            "int a; a = 0; if (x > 100) { a = 1; }",
            prelude="#pragma input x\n#pragma range x 0 3\nint x;",
        )
        assert result.unreachable_blocks

    def test_call_havocs_globals(self):
        # ext() may write g, so the g > 5 arm must stay feasible
        cfg, _, result = feasibility_of(
            "g = 1; ext(); if (g > 5) { g = 2; }",
            prelude="int g; void ext(void);",
        )
        assert not result.infeasible_edges

    def test_switch_case_outside_selector_range_is_dead(self):
        cfg, _, result = feasibility_of(
            "int a; a = 0;"
            "switch (x) { case 0: a = 1; break; case 9: a = 2; break; }",
            prelude="#pragma input x\n#pragma range x 0 3\nint x;",
        )
        assert any(kind == EdgeKind.CASE.value for _, _, kind in result.infeasible_edges)

    def test_loop_does_not_diverge(self):
        cfg, _, result = feasibility_of(
            "int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; }"
        )
        # widening must terminate and the loop body must stay reachable
        assert not result.unreachable_blocks

    def test_graph_walk_agrees_with_fixpoint(self):
        # plain reachability over the CFG minus the proven-infeasible edges
        # must agree with the fixpoint: nothing the fixpoint reached may be
        # cut off, and every fixpoint-unreachable block must be cut off
        cfg, _, result = feasibility_of(
            "int a; a = 1; if (a > 5) { a = 2; } else { a = 3; }"
        )
        walked = cfg.reachable_blocks(infeasible_edges=result.infeasible_edges)
        assert result.reachable <= walked
        assert not (result.unreachable_blocks & walked)

    def test_segments_within_unreachable_region(self):
        from repro.partition.partitioner import PaperPartitioner

        source = (
            "void f(void) { int a; a = 1;"
            " if (a > 5) { a = 2; ext(); a = 3; } a = 4; }"
        )
        analyzed = parse_and_analyze("void ext(void);\n" + source)
        function = analyzed.program.function("f")
        cfg = build_cfg(function)
        result = analyze_feasibility(cfg, analyzed.table("f"))
        partition = PaperPartitioner(2).partition(function, cfg)
        dead = partition.segments_within(result.unreachable_blocks)
        for segment in dead:
            assert segment.block_ids <= result.unreachable_blocks

    def test_overflowing_arithmetic_widens_instead_of_pruning(self):
        # a + a wraps at 16-bit int width; a sound analysis may not prove
        # the branch from the raw (unwrapped) sum
        cfg, _, result = feasibility_of(
            "int a; a = 30000; a = a + 30000; if (a > 0) { a = 1; }"
        )
        assert not result.infeasible_edges


# ---------------------------------------------------------------------- #
# loop-bound inference unit tests
# ---------------------------------------------------------------------- #
class TestLoopBounds:
    def bounds_of(self, body: str, **kwargs):
        cfg, table = analyzed_function(body, **kwargs)
        return infer_loop_bounds(cfg, table)

    def test_classic_counted_loop(self):
        bounds = self.bounds_of(
            "int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; }"
        )
        assert list(bounds.values()) == [10]

    def test_stride_and_inclusive_limit(self):
        bounds = self.bounds_of(
            "int i; int s; s = 0; for (i = 2; i <= 10; i = i + 3) { s = s + 1; }"
        )
        # 2, 5, 8 -- then 11 > 10
        assert list(bounds.values()) == [3]

    def test_counting_down(self):
        bounds = self.bounds_of(
            "int i; int s; s = 0; for (i = 9; i > 0; i = i - 1) { s = s + 1; }"
        )
        assert list(bounds.values()) == [9]

    def test_counter_written_in_body_refuses(self):
        bounds = self.bounds_of(
            "int i; for (i = 0; i < 10; i = i + 1) { if (i > 3) { i = 9; } }"
        )
        assert bounds == {}

    def test_input_counter_refuses(self):
        bounds = self.bounds_of(
            "int s; s = 0; for (x = 0; x < 10; x = x + 1) { s = s + 1; }",
            header="void f(int x)",
        )
        assert bounds == {}

    def test_non_constant_limit_refuses(self):
        bounds = self.bounds_of(
            "int i; int s; s = 0; for (i = 0; i < x; i = i + 1) { s = s + 1; }",
            header="void f(int x)",
        )
        assert bounds == {}


# ---------------------------------------------------------------------- #
# diagnostics unit tests
# ---------------------------------------------------------------------- #
class TestDiagnostics:
    def diags_of(self, body: str, **kwargs):
        cfg, table, result = feasibility_of(body, **kwargs)
        return diagnose(cfg, table, result)

    def test_uninitialized_read_is_reported(self):
        diagnostics = self.diags_of("int a; int b; b = a + 1;")
        assert any(d.code == "SA001" for d in diagnostics)

    def test_initialized_read_is_clean(self):
        diagnostics = self.diags_of("int a; int b; a = 1; b = a + 1;")
        assert not any(d.code == "SA001" for d in diagnostics)

    def test_unreachable_code_is_reported(self):
        diagnostics = self.diags_of("int a; a = 1; if (a > 5) { a = 2; }")
        assert any(d.code == "SA002" for d in diagnostics)

    def test_definite_division_by_zero_is_an_error(self):
        diagnostics = self.diags_of("int a; int b; b = 0; a = 4 / b;")
        hits = [d for d in diagnostics if d.code == "SA003"]
        assert hits and hits[0].severity == "error"

    def test_possible_division_by_zero_is_a_warning(self):
        diagnostics = self.diags_of(
            "int a; a = 4 / x;", header="void f(int x)"
        )
        hits = [d for d in diagnostics if d.code == "SA003"]
        assert hits and hits[0].severity == "warning"

    def test_signed_overflow_is_reported(self):
        diagnostics = self.diags_of("int a; int b; a = 30000; b = a + 30000;")
        assert any(d.code == "SA004" for d in diagnostics)

    def test_constant_branch_is_info(self):
        diagnostics = self.diags_of("int a; a = 1; if (a > 5) { a = 2; }")
        hits = [d for d in diagnostics if d.code == "SA005"]
        assert hits and hits[0].severity == "info"

    def test_render_and_severity_helpers(self):
        diagnostics = self.diags_of("int a; int b; b = 0; a = 4 / b;")
        text = render_diagnostics(diagnostics)
        assert "SA003" in text and "error:" in text
        assert max_severity(diagnostics) == "error"
        assert max_severity([]) is None

    def test_seeded_workloads_have_no_errors(self):
        # generated code must never trip an error-severity diagnostic
        for workload in (
            generate_multi_function_workload(seed=2005, functions=3, units=2),
            generate_call_chain_workload(seed=2005, units=2),
        ):
            for unit, source in workload.sources.items():
                analyzed = parse_and_analyze(source)
                for function in analyzed.program.functions:
                    if function.body is None:
                        continue
                    cfg = build_cfg(function)
                    table = analyzed.table(function.name)
                    result = analyze_feasibility(cfg, table)
                    diagnostics = diagnose(cfg, table, result)
                    assert max_severity(diagnostics) != "error", (
                        unit,
                        function.name,
                        render_diagnostics(diagnostics),
                    )


# ---------------------------------------------------------------------- #
# differential soundness: static INFEASIBLE vs the model checker
# ---------------------------------------------------------------------- #
def _assert_static_claims_hold(analyzed, function_name: str) -> int:
    """MC-verify every static unreachability claim for one function.

    Returns the number of claims checked so callers can assert the suite
    exercised something.
    """
    cfg = build_cfg(analyzed.program.function(function_name))
    table = analyzed.table(function_name)
    result = analyze_feasibility(cfg, table)
    model = build_optimized_model(
        analyzed, function_name, OptimizationConfig.cfg_preserving()
    )
    checker = ModelChecker(model.translation, ModelCheckerOptions())
    checked = 0
    for block_id in sorted(result.unreachable_blocks):
        if block_id not in model.translation.block_location:
            continue
        verdict = checker.find_test_data_for_block(block_id).verdict
        assert verdict is Verdict.UNREACHABLE, (function_name, block_id)
        checked += 1
    return checked


class TestDifferentialSoundness:
    def test_multi_function_workload(self):
        workload = generate_multi_function_workload(seed=2005, functions=3, units=2)
        checked = 0
        for source in workload.sources.values():
            analyzed = parse_and_analyze(source)
            for function in analyzed.program.functions:
                if function.body is None:
                    continue
                checked += _assert_static_claims_hold(analyzed, function.name)
        assert checked > 0, "suite proved nothing -- no differential coverage"

    def test_call_chain_workload(self):
        workload = generate_call_chain_workload(seed=2005, units=2)
        for source in workload.sources.values():
            analyzed = parse_and_analyze(source)
            for function in analyzed.program.functions:
                if function.body is None:
                    continue
                _assert_static_claims_hold(analyzed, function.name)

    def test_small_industrial_application(self):
        app = generate_small_application(seed=7)
        checked = _assert_static_claims_hold(app.analyzed, app.function_name)
        assert checked > 0

    def test_prefilter_verdicts_match_unfiltered_engine(self):
        # every block goal of the small app, answered with and without the
        # prefilter: identical verdicts, strictly fewer solver runs
        app = generate_small_application(seed=7)
        model = build_optimized_model(
            app.analyzed, app.function_name, OptimizationConfig.cfg_preserving()
        )
        feasibility = analyze_feasibility(
            app.cfg, app.analyzed.table(app.function_name)
        )
        prefilter = StaticPrefilter(feasibility)
        builder = GoalBuilder(block_location=model.translation.block_location)
        targets = sorted(model.translation.block_location)

        def run(active):
            engine = QueryEngine(
                model.translation,
                QueryEngineOptions(
                    budget=QueryBudget(), slicing=True, prefilter=active
                ),
            )
            results = [engine.check(builder.reach_block(b)) for b in targets]
            return results, engine.stats

        baseline, base_stats = run(None)
        filtered, filt_stats = run(prefilter)
        assert [r.verdict for r in baseline] == [r.verdict for r in filtered]
        assert filt_stats.static_prunes > 0
        assert filt_stats.solver_runs < base_stats.solver_runs
        # a pruned goal yields no witness; an unpruned one must keep its
        # witness inputs bit-identical
        for before, after in zip(baseline, filtered):
            if before.counterexample is not None and after.counterexample is not None:
                assert before.counterexample.inputs == after.counterexample.inputs


# ---------------------------------------------------------------------- #
# pipeline integration: --no-sa parity and schema precedence
# ---------------------------------------------------------------------- #
class TestPipelineIntegration:
    def test_wcet_bounds_identical_with_and_without_sa(self):
        workload = generate_multi_function_workload(seed=2005, functions=3, units=2)
        hybrid = HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1)
        bounds: dict[bool, dict[str, int]] = {}
        for sa_on in (True, False):
            config = AnalyzerConfig(
                path_bound=2,
                hybrid=hybrid,
                extra_random_vectors=5,
                exhaustive_limit=None,
                static_analysis=sa_on,
            )
            per_function: dict[str, int] = {}
            for source in workload.sources.values():
                analyzed = parse_and_analyze(source)
                for function in analyzed.program.functions:
                    if function.body is None:
                        continue
                    report = WcetAnalyzer(
                        analyzed, function.name, config
                    ).analyze()
                    per_function[function.name] = report.wcet_bound_cycles
            bounds[sa_on] = per_function
        assert bounds[True] == bounds[False]

    def test_report_carries_sa_fields(self):
        source = (
            "#pragma input x\n#pragma range x 0 3\nint x;\n"
            "int f(void) { int a; a = 0;"
            " if (x > 100) { a = 9; } return a; }"
        )
        analyzed = parse_and_analyze(source)
        config = AnalyzerConfig(
            path_bound=2,
            hybrid=HybridOptions(plateau_patterns=10, max_random_vectors=30, seed=1),
        )
        report = WcetAnalyzer(analyzed, "f", config).analyze()
        assert report.sa_edges_pruned > 0
        disabled = WcetAnalyzer(
            analyzed,
            "f",
            AnalyzerConfig(
                path_bound=2,
                hybrid=HybridOptions(
                    plateau_patterns=10, max_random_vectors=30, seed=1
                ),
                static_analysis=False,
            ),
        ).analyze()
        assert disabled.sa_edges_pruned == 0
        assert disabled.sa_diagnostics == []
        assert report.wcet_bound_cycles == disabled.wcet_bound_cycles

    def test_static_analysis_participates_in_cache_key(self):
        from repro.project.model import config_fingerprint

        on = AnalyzerConfig(path_bound=2)
        off = AnalyzerConfig(path_bound=2, static_analysis=False)
        assert config_fingerprint(on) != config_fingerprint(off)

    def test_run_static_analysis_wraps_everything(self):
        source = "int f(int x) { int a; a = 0; if (x > 0) { a = 1; } return a; }"
        analyzed = parse_and_analyze(source)
        cfg = build_cfg(analyzed.program.function("f"))
        result = run_static_analysis(cfg, analyzed.table("f"))
        assert result.prefilter is not None
        payload = result.payload()
        assert {"edges_pruned", "loop_bounds_inferred", "diagnostics"} <= set(payload)


# ---------------------------------------------------------------------- #
# lint CLI
# ---------------------------------------------------------------------- #
class TestLintCli:
    def write(self, tmp_path, source: str):
        target = tmp_path / "unit.c"
        target.write_text(source)
        return str(target)

    def test_clean_unit_exits_zero(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = self.write(tmp_path, "int f(void) { int a; a = 1; return a; }")
        assert cli_main(["lint", path]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_error_diagnostic_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = self.write(
            tmp_path, "int f(void) { int b; b = 0; return 4 / b; }"
        )
        assert cli_main(["lint", path]) == 1
        assert "SA003" in capsys.readouterr().out

    def test_warning_only_exits_zero(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = self.write(
            tmp_path,
            "int f(void) { int a; a = 1; if (a > 5) { a = 2; } return a; }",
        )
        assert cli_main(["lint", path]) == 0
        output = capsys.readouterr().out
        assert "SA002" in output

    def test_json_output(self, tmp_path, capsys):
        import json

        from repro.cli import main as cli_main

        path = self.write(
            tmp_path, "int f(void) { int b; b = 0; return 4 / b; }"
        )
        assert cli_main(["lint", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "SA003" in codes

    def test_function_filter(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = self.write(
            tmp_path,
            "int f(void) { int b; b = 0; return 4 / b; }\n"
            "int g(void) { return 1; }",
        )
        assert cli_main(["lint", path, "--function", "g"]) == 0
