"""Codebase self-lint: the repo's own invariants, enforced in tier 1.

``repro.sa.selflint`` walks the Python AST of ``src/repro`` and checks
the cross-cutting rules that earlier PRs established by convention:
monotonic clocks in the service, registered fault sites, registered
perf/span names, ContextVar reset discipline.  The synthetic-module
tests keep the rules honest -- each one must actually fire.
"""

from __future__ import annotations

from pathlib import Path

from repro.sa.selflint import (
    RULES,
    LintFinding,
    load_waivers,
    registered_names,
    run_selflint,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
WAIVERS = Path(__file__).resolve().parent / "selflint_waivers.txt"


class TestRepoIsClean:
    def test_source_tree_passes_selflint(self):
        findings = run_selflint(REPO_SRC, waivers=load_waivers(WAIVERS))
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"self-lint findings:\n{rendered}"

    def test_waiver_file_parses(self):
        # every waiver line must name a known rule (guards against typos
        # silently waiving nothing)
        for rule, _path in load_waivers(WAIVERS):
            assert rule in RULES, f"unknown rule in waiver file: {rule}"


def lint_snippet(tmp_path: Path, relative: str, source: str) -> list[LintFinding]:
    target = tmp_path / relative
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return run_selflint(tmp_path, names_md=REPO_SRC / "perf" / "NAMES.md")


class TestRulesFire:
    def test_sl001_wall_clock_in_service(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "service/clock.py", "import time\nnow = time.time()\n"
        )
        assert any(f.rule == "SL001" for f in findings)

    def test_sl001_ignores_non_service_code(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "perf/clock.py", "import time\nnow = time.time()\n"
        )
        assert not any(f.rule == "SL001" for f in findings)

    def test_sl002_unregistered_fault_site(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "resilience/use.py",
            "maybe_fault('no.such.site')\n",
        )
        assert any(f.rule == "SL002" for f in findings)

    def test_sl003_unregistered_perf_name(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "x.py", "perf.add('made.up.counter', 1)\n"
        )
        assert any(f.rule == "SL003" for f in findings)

    def test_sl003_unregistered_span_name(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "x.py", "with obs.span('made.up.span'):\n    pass\n"
        )
        assert any(f.rule == "SL003" for f in findings)

    def test_sl003_registered_name_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "x.py", "perf.add('mc.query.solver_runs', 1)\n"
        )
        assert not any(f.rule == "SL003" for f in findings)

    def test_sl004_set_without_reset(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "x.py",
            "from contextvars import ContextVar\n"
            "var = ContextVar('var')\n"
            "def use():\n    var.set(1)\n",
        )
        assert any(f.rule == "SL004" for f in findings)

    def test_sl004_set_with_reset_is_clean(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "x.py",
            "from contextvars import ContextVar\n"
            "var = ContextVar('var')\n"
            "def use():\n    token = var.set(1)\n    var.reset(token)\n",
        )
        assert not any(f.rule == "SL004" for f in findings)

    def test_waivers_drop_findings(self, tmp_path):
        target = tmp_path / "service" / "clock.py"
        target.parent.mkdir(parents=True)
        target.write_text("import time\nnow = time.time()\n", encoding="utf-8")
        waived = run_selflint(
            tmp_path,
            names_md=REPO_SRC / "perf" / "NAMES.md",
            waivers=frozenset({("SL001", "service/clock.py")}),
        )
        assert not any(f.rule == "SL001" for f in waived)


class TestNamesRegistry:
    def test_registry_parses_both_sections(self):
        perf_names, span_names = registered_names(REPO_SRC / "perf" / "NAMES.md")
        assert "mc.query.static_prunes" in perf_names
        assert "sa.prefilter" in perf_names
        assert "analyze.sa" in span_names
