"""Unit tests of the mini-C lexer."""

from __future__ import annotations

import pytest

from repro.minic.errors import LexerError
from repro.minic.lexer import tokenize
from repro.minic.tokens import TokenKind


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only_source(self):
        tokens = tokenize("   \n\t  \r\n ")
        assert [t.kind for t in tokens] == [TokenKind.EOF]

    def test_identifier(self):
        tokens = tokenize("wiper_state")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "wiper_state"

    def test_keyword_recognised(self):
        tokens = tokenize("if else while switch")
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifier_with_digits_and_underscore(self):
        assert values("_tmp42") == ["_tmp42"]

    def test_decimal_number(self):
        tokens = tokenize("12345")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].value == 12345

    def test_hex_number(self):
        assert values("0x1F") == [31]

    def test_octal_number(self):
        assert values("017") == [15]

    def test_number_with_suffixes(self):
        assert values("42u 42L 42UL") == [42, 42, 42]

    def test_char_literal(self):
        assert values("'A'") == [65]

    def test_char_escape(self):
        assert values("'\\n'") == [10]

    def test_punctuators_maximal_munch(self):
        assert values("a<<=b") == ["a", "<<=", "b"]

    def test_relational_operators(self):
        assert values("<= >= == != < >") == ["<=", ">=", "==", "!=", "<", ">"]

    def test_increment_and_arrow(self):
        assert values("++ -- ->") == ["++", "--", "->"]


class TestCommentsAndDirectives:
    def test_line_comment_skipped(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert values("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_include_directive_ignored(self):
        assert values('#include <stdio.h>\nx') == ["x"]

    def test_define_directive_ignored(self):
        assert values("#define LIMIT 10\ny") == ["y"]

    def test_pragma_becomes_token(self):
        tokens = tokenize("#pragma loopbound(8)\nwhile")
        assert tokens[0].kind is TokenKind.PRAGMA
        assert tokens[0].value == "loopbound(8)"
        assert tokens[1].is_keyword("while")

    def test_pragma_input(self):
        tokens = tokenize("#pragma input sensor")
        assert tokens[0].kind is TokenKind.PRAGMA
        assert "input" in str(tokens[0].value)


class TestErrorsAndLocations:
    def test_unknown_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")

    def test_malformed_hex_raises(self):
        with pytest.raises(LexerError):
            tokenize("0x")

    def test_identifier_after_number_raises(self):
        with pytest.raises(LexerError):
            tokenize("12abc")

    def test_unterminated_char_raises(self):
        with pytest.raises(LexerError):
            tokenize("'a")

    def test_locations_track_lines_and_columns(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_location_filename(self):
        tokens = tokenize("x", filename="unit.c")
        assert tokens[0].location.filename == "unit.c"


class TestRealisticSnippets:
    def test_generated_switch_snippet(self):
        source = "switch (state) { case 0: out = 1; break; default: break; }"
        token_values = values(source)
        assert "switch" in token_values
        assert "case" in token_values
        assert token_values.count("break") == 2

    def test_expression_snippet(self):
        token_values = values("x = (a + b) * 2 >= limit && !flag;")
        assert "&&" in token_values
        assert ">=" in token_values
        assert "!" in token_values
