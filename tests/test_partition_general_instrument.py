"""Tests of the generalised partitioner and instrumentation-point placement."""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg
from repro.partition import (
    GeneralPartitionOptions,
    GeneralPartitioner,
    PointKind,
    SegmentKind,
    annotate_source,
    build_instrumentation_plan,
    partition_function,
    partition_function_general,
    segment_summary,
)
from repro.workloads.figure1 import FIGURE1_SOURCE


class TestGeneralPartitioner:
    def test_straight_line_chains_are_fused(self, figure1, figure1_cfg):
        result = partition_function_general(
            figure1.program.function("main"), 1, figure1_cfg
        )
        result.validate(figure1_cfg)
        chains = [s for s in result.segments if s.kind is SegmentKind.STRAIGHT_LINE]
        assert chains, "expected at least one fused straight-line chain"

    def test_general_never_needs_more_points_than_paper(self, figure1, figure1_cfg):
        for bound in (1, 2, 3, 4, 6):
            paper = partition_function(figure1.program.function("main"), bound, figure1_cfg)
            general = partition_function_general(
                figure1.program.function("main"), bound, figure1_cfg
            )
            assert general.instrumentation_points <= paper.instrumentation_points

    def test_general_measurements_cover_all_paths(self, figure1, figure1_cfg):
        general = partition_function_general(
            figure1.program.function("main"), 2, figure1_cfg
        )
        assert general.measurements >= len(general.segments)

    def test_whole_function_collapse(self, figure1, figure1_cfg):
        general = partition_function_general(
            figure1.program.function("main"), 6, figure1_cfg
        )
        assert len(general.segments) == 1

    def test_disable_straight_line_fusion(self, figure1, figure1_cfg):
        options = GeneralPartitionOptions(fuse_straight_line=False, collapse_whole_branches=False)
        result = GeneralPartitioner(1, options).partition(
            figure1.program.function("main"), figure1_cfg
        )
        assert all(s.is_single_block for s in result.segments)

    def test_collapse_whole_branches_reduces_points(self, branching_program):
        function = branching_program.program.function("classify")
        cfg = build_cfg(function)
        with_collapse = GeneralPartitioner(
            3, GeneralPartitionOptions(collapse_whole_branches=True)
        ).partition(function, cfg)
        without_collapse = GeneralPartitioner(
            3, GeneralPartitionOptions(collapse_whole_branches=False)
        ).partition(function, cfg)
        assert (
            with_collapse.instrumentation_points
            <= without_collapse.instrumentation_points
        )

    def test_validates_on_wiper(self, wiper_code, wiper_function_name):
        function = wiper_code.program.function(wiper_function_name)
        cfg = build_cfg(function)
        for bound in (1, 2, 4, 8, 40):
            result = partition_function_general(function, bound, cfg)
            result.validate(cfg)


class TestInstrumentationPlan:
    def test_point_count_matches_paper_accounting(self, figure1, figure1_cfg):
        for bound in (1, 2, 6):
            result = partition_function(figure1.program.function("main"), bound, figure1_cfg)
            plan = build_instrumentation_plan(result, figure1_cfg)
            assert plan.point_count == result.instrumentation_points

    def test_every_segment_has_entry_and_exit_point(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        plan = build_instrumentation_plan(result, figure1_cfg)
        for segment in result.segments:
            points = plan.points_for_segment(segment.segment_id)
            kinds = {p.kind for p in points}
            assert kinds == {PointKind.ENTRY, PointKind.EXIT}

    def test_entry_point_triggers_on_entry_block(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        plan = build_instrumentation_plan(result, figure1_cfg)
        for segment in result.segments:
            entry = plan.entry_point(segment.segment_id)
            assert entry.trigger_block == segment.entry_block
            assert entry in plan.triggers[segment.entry_block]

    def test_exit_to_function_end_registered(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 6, figure1_cfg)
        plan = build_instrumentation_plan(result, figure1_cfg)
        assert plan.end_of_function_points, "whole-function segment must exit at the end"

    def test_unknown_segment_entry_raises(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        plan = build_instrumentation_plan(result, figure1_cfg)
        with pytest.raises(KeyError):
            plan.entry_point(1234)


class TestReporting:
    def test_annotate_source_mentions_every_segment(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        annotated = annotate_source(result, figure1_cfg, FIGURE1_SOURCE)
        for segment in result.segments:
            assert f"segment {segment.segment_id}:" in annotated

    def test_annotate_source_preserves_code_lines(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        annotated = annotate_source(result, figure1_cfg, FIGURE1_SOURCE)
        for line in FIGURE1_SOURCE.splitlines():
            assert line in annotated

    def test_segment_summary_rows(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        rows = segment_summary(result)
        assert len(rows) == len(result.segments)
        assert all({"segment", "kind", "blocks", "paths"} <= set(row) for row in rows)
