"""Tests of the persistent model-checking query store (repro.mc.store).

The store's contract: a warm run answers every unchanged reachability
query from disk with zero solver runs and bit-identical results, and an
entry that fails its witness replay is rejected (counted + quarantined)
but can never change a verdict.  All cases are bounded (tiny models,
small workloads) and carry the ``mc`` marker; the fault-injection cases
add ``chaos``.
"""

from __future__ import annotations

import json

import pytest

from repro import perf
from repro.mc import (
    GoalBuilder,
    QueryBudget,
    QueryEngine,
    QueryEngineOptions,
    QueryPlan,
    QueryStore,
    ReachabilityGoal,
    Verdict,
    using_query_store,
)
from repro.mc.query import PROBE_POLICY_ADAPTIVE, PROBE_POLICY_FIXED
from repro.mc.store import pack_entry, structural_error
from repro.minic import parse_and_analyze
from repro.pipeline.analyzer import AnalyzerConfig
from repro.project import Project, ProjectScheduler, ResultCache
from repro.resilience import FaultPlan
from repro.testgen.hybrid import HybridOptions
from repro.transsys import translate_function
from repro.transsys.translate import TranslationOptions
from repro.workloads.multi import generate_multi_function_workload

pytestmark = pytest.mark.mc


GUARDED = """
#pragma input a
#pragma input b
#pragma range a 0 20
#pragma range b 0 20
int a; int b; int out;
void f(void) {
    out = 0;
    if (a > 10) {
        if (b == a - 3) {
            out = 1;
            target_hit();
        } else {
            out = 2;
        }
    } else {
        out = 3;
    }
}
"""

#: like GUARDED but with a provably dead branch (a + b <= 40 < 100):
#: guarantees the goal set contains an UNREACHABLE verdict
GUARDED_DEAD = """
#pragma input a
#pragma input b
#pragma range a 0 20
#pragma range b 0 20
int a; int b; int out;
void f(void) {
    out = 0;
    if (a > 10) {
        out = 1;
        target_hit();
    }
    if (a + b > 100) {
        out = 2;
        never_hit();
    }
}
"""


def translate(source: str, function: str = "f"):
    analyzed = parse_and_analyze(source)
    options = TranslationOptions(
        use_declared_ranges=True, initialize_variables=True
    )
    return translate_function(analyzed, function, options)


def all_block_goals(translation) -> list[tuple[object, ReachabilityGoal]]:
    builder = GoalBuilder(block_location=translation.block_location)
    return [
        (block.block_id, builder.reach_block(block.block_id))
        for block in translation.cfg.real_blocks()
    ]


def run_with_store(translation, cache_dir, goals):
    """One engine pass over *goals* against the store in *cache_dir*."""
    engine = QueryEngine(
        translation, QueryEngineOptions(budget=QueryBudget(max_steps=50_000))
    )
    store = QueryStore(ResultCache(cache_dir))
    with using_query_store(store):
        results = {key: engine.check(goal) for key, goal in goals}
    return engine, store, results


def query_entry_files(cache_dir):
    return sorted(
        path
        for path in cache_dir.rglob("*.json")
        if path.parent.name != "corrupt"
        and json.loads(path.read_text()).get("kind") == "query"
    )


def assert_identical_results(cold, warm):
    assert set(cold) == set(warm)
    for key, cold_result in cold.items():
        warm_result = warm[key]
        assert warm_result.verdict is cold_result.verdict, key
        if cold_result.counterexample is None:
            assert warm_result.counterexample is None
        else:
            assert warm_result.counterexample is not None
            assert (
                warm_result.counterexample.inputs
                == cold_result.counterexample.inputs
            )
            assert (
                warm_result.counterexample.initial_state
                == cold_result.counterexample.initial_state
            )


# ---------------------------------------------------------------------- #
# warm hits
# ---------------------------------------------------------------------- #
class TestWarmHits:
    def test_warm_engine_answers_everything_from_disk(self, tmp_path):
        translation = translate(GUARDED)
        goals = all_block_goals(translation)

        cold_engine, cold_store, cold = run_with_store(
            translation, tmp_path / "q", goals
        )
        assert cold_engine.stats.store_hits == 0
        assert cold_engine.stats.store_writes > 0
        assert cold_engine.stats.solver_runs > 0

        # a fresh engine AND a fresh store handle: everything the warm run
        # knows came through the on-disk entries
        warm_engine, warm_store, warm = run_with_store(
            translation, tmp_path / "q", goals
        )
        assert warm_engine.stats.store_hits == warm_engine.stats.planned
        assert warm_engine.stats.solver_runs == 0
        assert warm_engine.stats.store_misses == 0
        assert warm_engine.stats.replay_failures == 0
        assert_identical_results(cold, warm)

    def test_store_hits_transfer_across_identical_functions(self, tmp_path):
        # the fingerprint hashes system *content*, never the function name:
        # g's queries are answered by the entries f's run persisted
        f_translation = translate(GUARDED)
        g_translation = translate(GUARDED.replace("void f", "void g"), "g")

        run_with_store(f_translation, tmp_path / "q", all_block_goals(f_translation))
        warm_engine, _, _ = run_with_store(
            g_translation, tmp_path / "q", all_block_goals(g_translation)
        )
        assert warm_engine.stats.store_hits == warm_engine.stats.planned
        assert warm_engine.stats.solver_runs == 0

    def test_disabled_cache_disables_the_store(self, tmp_path):
        translation = translate(GUARDED)
        goals = all_block_goals(translation)
        engine = QueryEngine(translation)
        store = QueryStore(ResultCache.disabled())
        with using_query_store(store):
            for _, goal in goals:
                engine.check(goal)
        assert engine.stats.store_hits == 0
        assert engine.stats.store_writes == 0


# ---------------------------------------------------------------------- #
# poisoned entries
# ---------------------------------------------------------------------- #
class TestPoisonedEntries:
    def test_unreplayable_witness_is_rejected_not_served(self, tmp_path):
        translation = translate(GUARDED)
        goals = all_block_goals(translation)
        _, _, cold = run_with_store(translation, tmp_path / "q", goals)

        # poison one REACHABLE entry: re-label a trace step so no current
        # transition matches its signature, and re-checksum so the forgery
        # is structurally perfect -- only the replay can catch it
        poisoned = 0
        for path in query_entry_files(tmp_path / "q"):
            payload = json.loads(path.read_text())
            entry = payload["entry"]
            witness = entry.get("witness")
            if not witness or not witness["trace"] or poisoned:
                continue
            witness["trace"][0]["labels"] = ["no-such-label"]
            payload["entry"] = pack_entry(
                entry["slice_fingerprint"],
                entry["goal_fingerprint"],
                Verdict.REACHABLE,
                witness,
            )
            assert structural_error(payload["entry"]) is None
            path.write_text(json.dumps(payload))
            poisoned += 1
        assert poisoned == 1

        warm_engine, warm_store, warm = run_with_store(
            translation, tmp_path / "q", goals
        )
        # the verdict is recomputed, never taken from the forged entry
        assert_identical_results(cold, warm)
        assert warm_engine.stats.replay_failures == 1
        assert warm_engine.stats.store_hits == warm_engine.stats.planned - 1
        assert warm_store.replay_failures[0]["reason"] == "witness replay failed"
        corrupt = [
            path
            for path in (tmp_path / "q" / "corrupt").glob("*.json")
            if not path.name.endswith(".diag.json")
        ]
        assert len(corrupt) == 1

    def test_flipped_verdict_cannot_fool_the_loader(self, tmp_path):
        translation = translate(GUARDED_DEAD)
        goals = all_block_goals(translation)
        _, _, cold = run_with_store(translation, tmp_path / "q", goals)
        unreachable = {
            key for key, result in cold.items()
            if result.verdict is Verdict.UNREACHABLE
        }
        assert unreachable, "workload must include an infeasible goal"

        # forge every UNREACHABLE proof into a REACHABLE claim backed by a
        # structurally valid but empty witness
        flipped = 0
        for path in query_entry_files(tmp_path / "q"):
            payload = json.loads(path.read_text())
            entry = payload["entry"]
            if entry["verdict"] != Verdict.UNREACHABLE.value:
                continue
            payload["entry"] = pack_entry(
                entry["slice_fingerprint"],
                entry["goal_fingerprint"],
                Verdict.REACHABLE,
                {"initial_state": {}, "trace": []},
            )
            path.write_text(json.dumps(payload))
            flipped += 1
        assert flipped > 0

        warm_engine, _, warm = run_with_store(translation, tmp_path / "q", goals)
        for key in unreachable:
            assert warm[key].verdict is Verdict.UNREACHABLE
        assert warm_engine.stats.replay_failures >= flipped

    def test_bitrot_is_caught_structurally(self, tmp_path):
        translation = translate(GUARDED)
        goals = all_block_goals(translation)
        _, _, cold = run_with_store(translation, tmp_path / "q", goals)

        # flip a byte without fixing the checksum
        path = query_entry_files(tmp_path / "q")[0]
        payload = json.loads(path.read_text())
        payload["entry"]["slice_fingerprint"] = "0" * 16
        path.write_text(json.dumps(payload))

        warm_engine, _, warm = run_with_store(translation, tmp_path / "q", goals)
        assert_identical_results(cold, warm)
        assert warm_engine.stats.replay_failures == 1


# ---------------------------------------------------------------------- #
# cache-verify sweep over the query namespace
# ---------------------------------------------------------------------- #
class TestVerifySweep:
    def test_verify_checks_and_quarantines_query_entries(self, tmp_path):
        translation = translate(GUARDED)
        run_with_store(translation, tmp_path / "q", all_block_goals(translation))
        cache = ResultCache(tmp_path / "q")

        report = cache.verify()
        assert report["query_checked"] > 0
        assert report["query_ok"] == report["query_checked"]
        assert report["query_quarantined"] == 0

        # corrupt one entry (stale checksum) and sweep again
        path = query_entry_files(tmp_path / "q")[0]
        payload = json.loads(path.read_text())
        payload["entry"]["verdict"] = "tampered"
        path.write_text(json.dumps(payload))
        report = cache.verify()
        assert report["query_quarantined"] == 1
        assert any("query entry invalid" in note for note in report["entries"])
        assert not path.exists()
        assert list((tmp_path / "q" / "corrupt").glob("*.json"))


# ---------------------------------------------------------------------- #
# adaptive prefix-probe policy
# ---------------------------------------------------------------------- #
def _label_goals(sequences):
    return [
        (index, ReachabilityGoal(ordered_labels=sequence, description=str(index)))
        for index, sequence in enumerate(sequences)
    ]


class TestAdaptiveProbePolicy:
    def test_two_sharers_with_long_tails_get_a_probe(self):
        # count*len + extensions = 2*3 + 6 = 12 >= 4*3: worth probing even
        # though the fixed >= 3-sharers rule would skip it
        sequences = [
            ("a", "b", "c", "x1", "x2", "x3"),
            ("a", "b", "c", "y1", "y2", "y3"),
        ]
        adaptive = QueryPlan.build(_label_goals(sequences))
        assert adaptive.probe_count == 1
        assert adaptive.items[0].goal.ordered_labels == ("a", "b", "c")
        fixed = QueryPlan.build(
            _label_goals(sequences), probe_policy=PROBE_POLICY_FIXED
        )
        assert fixed.probe_count == 0

    def test_short_tails_do_not_pay_for_a_probe(self):
        # 3*4 + 3 = 15 < 4*4: the probe costs nearly as much as just
        # answering the goals, so the adaptive policy declines where the
        # fixed threshold would still fire
        sequences = [
            ("a", "b", "c", "d", "x"),
            ("a", "b", "c", "d", "y"),
            ("a", "b", "c", "d", "z"),
        ]
        adaptive = QueryPlan.build(_label_goals(sequences))
        assert adaptive.probe_count == 0
        fixed = QueryPlan.build(
            _label_goals(sequences), probe_policy=PROBE_POLICY_FIXED
        )
        assert fixed.probe_count == 1

    def test_policy_constants_are_distinct(self):
        assert PROBE_POLICY_ADAPTIVE != PROBE_POLICY_FIXED


# ---------------------------------------------------------------------- #
# scheduler integration (cross-run / cross-process population)
# ---------------------------------------------------------------------- #
QUICK_HYBRID = HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1)


def quick_config(**overrides) -> AnalyzerConfig:
    # static analysis is off here on purpose: the prefilter proves every
    # residual MC query on this tiny workload unreachable without the
    # solver, leaving nothing for the query store to persist -- and these
    # tests exist to exercise the store
    options = dict(
        path_bound=2,
        hybrid=QUICK_HYBRID,
        extra_random_vectors=5,
        exhaustive_limit=None,
        static_analysis=False,
    )
    options.update(overrides)
    return AnalyzerConfig(**options)


@pytest.fixture(scope="module")
def small_project():
    workload = generate_multi_function_workload(seed=2005, functions=3, units=2)
    return Project.from_sources(workload.sources)


class TestSchedulerIntegration:
    def test_warm_project_run_is_solver_free(self, small_project, tmp_path):
        query_cache = ResultCache(tmp_path / "query")
        # run 1 populates the store through pool workers (serial fallback
        # in sandboxed environments still populates it in-process)
        ProjectScheduler(
            small_project,
            config=quick_config(),
            cache=ResultCache(tmp_path / "cache-a"),
            workers=2,
            query_cache=query_cache,
        ).run()
        assert query_entry_files(tmp_path / "query")

        # run 2 misses the *function* cache (fresh directory) but shares
        # the query store: every reachability query must come from disk
        registry = perf.PerfRegistry()
        with perf.using_registry(registry):
            cold_equivalent = ProjectScheduler(
                small_project,
                config=quick_config(),
                cache=ResultCache(tmp_path / "cache-b"),
                query_cache=ResultCache(tmp_path / "query"),
            ).run()
        assert cold_equivalent.failures == []
        assert registry.counter("mc.query.solver_runs") == 0
        assert registry.counter("mc.query.store_hits") > 0
        assert registry.counter("mc.query.replay_failures") == 0

    def test_scheduler_shares_result_cache_by_default(
        self, small_project, tmp_path
    ):
        cache = ResultCache(tmp_path / "shared")
        ProjectScheduler(
            small_project, config=quick_config(), cache=cache
        ).run()
        assert query_entry_files(tmp_path / "shared")

    @pytest.mark.chaos
    def test_query_read_faults_degrade_to_misses(self, small_project, tmp_path):
        clean = ProjectScheduler(
            small_project,
            config=quick_config(),
            cache=ResultCache(tmp_path / "clean"),
        ).run()
        # every cache read fails -- function probes and query loads alike;
        # the run must complete with identical bounds, charging misses
        cache = ResultCache(tmp_path / "faulty")
        report = ProjectScheduler(
            small_project,
            config=quick_config(),
            cache=cache,
            fault_plan=FaultPlan.from_args(["cache.read:raise@1+"]),
        ).run()
        assert report.failures == []
        # reads failed beyond the per-function probes: the query namespace
        # was exercised under the same fault site
        assert cache.read_failures > len(report.functions)
        bounds = {
            (s.unit, s.function): s.wcet_bound_cycles for s in report.functions
        }
        for summary in clean.functions:
            assert bounds[(summary.unit, summary.function)] == (
                summary.wcet_bound_cycles
            )

    @pytest.mark.chaos
    def test_query_write_faults_never_fail_the_run(self, small_project, tmp_path):
        cache = ResultCache(tmp_path / "wf")
        report = ProjectScheduler(
            small_project,
            config=quick_config(),
            cache=cache,
            fault_plan=FaultPlan.from_args(["cache.write:raise@1+"]),
        ).run()
        assert report.failures == []
        # both kinds of writes were attempted and absorbed
        assert report.cache_write_failures > len(report.functions)
        assert query_entry_files(tmp_path / "wf") == []
