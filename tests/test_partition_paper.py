"""Unit tests of the paper's partitioning algorithm (Section 2.2 / Table 1)."""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg, count_ast_paths
from repro.minic import parse_and_analyze
from repro.partition import (
    PaperPartitioner,
    PartitionError,
    SegmentKind,
    measurement_effort_table,
    partition_function,
)
from repro.workloads.figure1 import TABLE1_EXPECTED


class TestTable1Reproduction:
    """The headline result of Section 2: Table 1 must be reproduced exactly."""

    @pytest.mark.parametrize("bound,expected", sorted(TABLE1_EXPECTED.items()))
    def test_instrumentation_points_and_measurements(self, figure1, figure1_cfg, bound, expected):
        result = partition_function(
            figure1.program.function("main"), bound, figure1_cfg
        )
        assert (result.instrumentation_points, result.measurements) == expected

    def test_effort_table_helper(self, figure1, figure1_cfg):
        rows = measurement_effort_table(
            figure1.program.function("main"), list(TABLE1_EXPECTED), figure1_cfg
        )
        for row in rows:
            expected = TABLE1_EXPECTED[row["bound"]]
            assert (row["instrumentation_points"], row["measurements"]) == expected

    def test_bound_one_measures_every_basic_block(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 1, figure1_cfg)
        assert all(segment.is_single_block for segment in result.segments)
        assert len(result.segments) == 11

    def test_bound_six_measures_whole_function(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 6, figure1_cfg)
        assert len(result.segments) == 1
        assert result.segments[0].kind is SegmentKind.WHOLE_FUNCTION
        assert result.segments[0].path_count == 6

    def test_bound_two_collapses_the_inner_if_region(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        regions = [s for s in result.segments if s.kind is SegmentKind.REGION]
        assert len(regions) == 1
        # the paper: four basic blocks need not be instrumented
        assert len(regions[0].block_ids) == 4
        assert regions[0].path_count == 2


class TestPartitionInvariants:
    BOUNDS = [1, 2, 3, 4, 6, 10]

    @pytest.mark.parametrize("bound", BOUNDS)
    def test_every_block_in_exactly_one_segment(self, figure1, figure1_cfg, bound):
        result = partition_function(figure1.program.function("main"), bound, figure1_cfg)
        result.validate(figure1_cfg)

    @pytest.mark.parametrize("bound", BOUNDS)
    def test_segments_are_single_entry(self, figure1, figure1_cfg, bound):
        result = partition_function(figure1.program.function("main"), bound, figure1_cfg)
        for segment in result.segments:
            segment.validate(figure1_cfg)

    def test_ip_is_twice_the_segment_count(self, figure1, figure1_cfg):
        for bound in self.BOUNDS:
            result = partition_function(figure1.program.function("main"), bound, figure1_cfg)
            assert result.instrumentation_points == 2 * len(result.segments)

    def test_measurements_never_below_segment_count(self, branching_program):
        function = branching_program.program.function("classify")
        cfg = build_cfg(function)
        for bound in self.BOUNDS:
            result = partition_function(function, bound, cfg)
            assert result.measurements >= len(result.segments)

    def test_ip_monotonically_non_increasing_in_bound(self, branching_program):
        function = branching_program.program.function("classify")
        cfg = build_cfg(function)
        previous = None
        for bound in range(1, 30):
            result = partition_function(function, bound, cfg)
            if previous is not None:
                assert result.instrumentation_points <= previous
            previous = result.instrumentation_points

    def test_whole_function_reached_when_bound_exceeds_paths(self, branching_program):
        function = branching_program.program.function("classify")
        cfg = build_cfg(function)
        total = count_ast_paths(function)
        result = partition_function(function, total, cfg)
        assert len(result.segments) == 1
        assert result.measurements == total

    def test_wiper_case_blocks_become_segments(self, wiper_code, wiper_function_name):
        """The paper partitioned the case study so each case block is one PS."""
        function = wiper_code.program.function(wiper_function_name)
        cfg = build_cfg(function)
        result = partition_function(function, 4, cfg)
        regions = [s for s in result.segments if s.kind is SegmentKind.REGION]
        # every state's case body contains branching and fits within b=4
        assert len(regions) >= 9

    def test_invalid_bound_raises(self, figure1):
        with pytest.raises(PartitionError):
            PaperPartitioner(0)

    def test_mismatched_cfg_raises(self, figure1, branching_program):
        cfg = build_cfg(branching_program.program.function("classify"))
        with pytest.raises(PartitionError):
            PaperPartitioner(2).partition(figure1.program.function("main"), cfg)


class TestPartitionOnLoops:
    def test_loop_body_becomes_region(self, small_loop_program):
        function = small_loop_program.program.function("accumulate")
        cfg = build_cfg(function)
        result = partition_function(function, 2, cfg)
        result.validate(cfg)

    def test_loop_function_whole_when_bound_large(self, small_loop_program):
        function = small_loop_program.program.function("accumulate")
        cfg = build_cfg(function)
        total = count_ast_paths(function)
        result = partition_function(function, total, cfg)
        assert len(result.segments) == 1


class TestSummaries:
    def test_summary_row_fields(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        row = result.summary_row()
        assert row["bound"] == 2
        assert row["segments"] == len(result.segments)

    def test_segment_lookup(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        first = result.segments[0]
        assert result.segment(first.segment_id) is first
        with pytest.raises(KeyError):
            result.segment(999)

    def test_segment_of_block(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 2, figure1_cfg)
        for block in figure1_cfg.real_blocks():
            segment = result.segment_of_block(block.block_id)
            assert segment is not None and block.block_id in segment.block_ids
        assert result.segment_of_block(figure1_cfg.entry.block_id) is None

    def test_fused_instrumentation_points(self, figure1, figure1_cfg):
        result = partition_function(figure1.program.function("main"), 1, figure1_cfg)
        assert result.fused_instrumentation_points == result.instrumentation_points // 2 + 1
