"""Instrumentation name-drift lint.

Sweeps ``src/`` for the literal names passed to ``perf.add(...)``,
``perf.record_time(...)``, ``perf.timed(...)`` (on the module or on a
registry object) and ``obs.span(...)``, and compares them — in both
directions — against the checked-in vocabulary in
``src/repro/perf/NAMES.md``.  A new instrumentation site must be listed
there; a listed name whose last call site disappeared must be removed.

Dynamically composed names (f-strings such as
``f"resilience.injected.{site}"``) contain no string literal at the call
site and are intentionally outside the sweep.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
NAMES_MD = SRC / "repro" / "perf" / "NAMES.md"

#: literal first argument of a perf counter/timer call, whether through the
#: ``perf`` module facade or a registry object (``request_registry.add``...)
PERF_CALL = re.compile(r'(?:\bperf|registry)\.(?:add|record_time|timed)\(\s*"([^"]+)"')

#: literal first argument of a trace-span context manager
SPAN_CALL = re.compile(r'\bobs\.span\(\s*"([^"]+)"')

PERF_SECTION = "Perf counters and timers"
SPAN_SECTION = "Trace spans"


def _swept_names() -> tuple[dict[str, set[str]], dict[str, set[str]]]:
    """(perf, span) name -> set of emitting modules, swept from ``src/``."""
    perf_names: dict[str, set[str]] = {}
    span_names: dict[str, set[str]] = {}
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        module = str(path.relative_to(SRC))
        for match in PERF_CALL.finditer(text):
            perf_names.setdefault(match.group(1), set()).add(module)
        for match in SPAN_CALL.finditer(text):
            span_names.setdefault(match.group(1), set()).add(module)
    return perf_names, span_names


def _registered_names() -> dict[str, set[str]]:
    """Section title -> backticked names listed in ``NAMES.md``."""
    sections: dict[str, set[str]] = {}
    current: str | None = None
    for line in NAMES_MD.read_text(encoding="utf-8").splitlines():
        if line.startswith("## "):
            current = line[3:].strip()
            sections[current] = set()
        elif current is not None and line.startswith("- `"):
            sections[current].add(line.split("`")[1])
    return sections


@pytest.mark.obs
def test_names_md_exists_with_both_sections():
    sections = _registered_names()
    assert PERF_SECTION in sections, f"NAMES.md lost its '{PERF_SECTION}' section"
    assert SPAN_SECTION in sections, f"NAMES.md lost its '{SPAN_SECTION}' section"
    assert sections[PERF_SECTION], "perf section of NAMES.md is empty"
    assert sections[SPAN_SECTION], "span section of NAMES.md is empty"


@pytest.mark.obs
def test_perf_names_match_registry():
    swept, _ = _swept_names()
    registered = _registered_names()[PERF_SECTION]
    unregistered = {
        name: sorted(modules)
        for name, modules in swept.items()
        if name not in registered
    }
    assert not unregistered, (
        "perf names emitted by src/ but missing from NAMES.md "
        f"(add them to the '{PERF_SECTION}' section): {unregistered}"
    )
    stale = registered - set(swept)
    assert not stale, (
        "perf names listed in NAMES.md with no remaining literal call "
        f"site in src/ (remove them): {sorted(stale)}"
    )


@pytest.mark.obs
def test_span_names_match_registry():
    _, swept = _swept_names()
    registered = _registered_names()[SPAN_SECTION]
    unregistered = {
        name: sorted(modules)
        for name, modules in swept.items()
        if name not in registered
    }
    assert not unregistered, (
        "span names emitted by src/ but missing from NAMES.md "
        f"(add them to the '{SPAN_SECTION}' section): {unregistered}"
    )
    stale = registered - set(swept)
    assert not stale, (
        "span names listed in NAMES.md with no remaining obs.span call "
        f"site in src/ (remove them): {sorted(stale)}"
    )


@pytest.mark.obs
def test_names_follow_convention():
    """Dot-separated, lower-case, subsystem-prefixed — both vocabularies."""
    sections = _registered_names()
    for section in (PERF_SECTION, SPAN_SECTION):
        for name in sections[section]:
            assert re.fullmatch(r"[a-z0-9_]+(\.[a-z0-9_]+)+", name), (
                f"{section}: {name!r} violates the dotted lower-case "
                "naming convention"
            )
