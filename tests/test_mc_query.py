"""Tests of the unified query engine (repro.mc.query + repro.mc.slicing).

All cases are bounded (tiny models, tight budgets) and carry the ``mc``
marker; the cross-check class is the sliced-vs-unsliced soundness guarantee
the query-engine refactor rests on: identical verdicts, and every witness
found with slicing replays identically on the unstubbed interpreter.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.graph import TerminatorKind
from repro.hw.board import EvaluationBoard
from repro.mc import (
    BudgetExhausted,
    EngineKind,
    ExplicitEngineOptions,
    GoalBuilder,
    ModelChecker,
    ModelCheckerOptions,
    QueryBudget,
    QueryEngine,
    QueryEngineOptions,
    QueryPlan,
    ReachabilityGoal,
    Verdict,
    slice_for_goal,
)
from repro.minic import parse_and_analyze
from repro.optim.pipeline import OptimizationConfig, build_optimized_model
from repro.pipeline.analyzer import AnalyzerConfig, analyze_source
from repro.testgen.hybrid import HybridOptions
from repro.testgen.modelcheck_gen import ModelCheckGeneratorOptions
from repro.transsys import translate_function
from repro.transsys.translate import TranslationOptions

pytestmark = pytest.mark.mc


GUARDED = """
#pragma input a
#pragma input b
#pragma range a 0 20
#pragma range b 0 20
int a; int b; int out;
void f(void) {
    out = 0;
    if (a > 10) {
        if (b == a - 3) {
            out = 1;
            target_hit();
        } else {
            out = 2;
        }
    } else {
        out = 3;
    }
}
"""

#: a free 16-bit variable chain: large enough that tiny budgets trip
#: mid-search, small enough that a sane budget answers instantly
SLOW = """
#pragma input x
#pragma input y
int x; int y; int acc;
void f(void) {
    acc = 0;
    if (x > 100) { acc = acc + 1; } else { acc = acc - 1; }
    if (y > 200) { acc = acc + 2; } else { acc = acc - 2; }
    if (x + y == 12345) { acc = acc + 4; } else { acc = acc - 4; }
    if (x - y == 4321) { target_hit(); }
}
"""


def translate(source: str, use_ranges: bool = True):
    analyzed = parse_and_analyze(source)
    options = TranslationOptions(
        use_declared_ranges=use_ranges, initialize_variables=use_ranges
    )
    return analyzed, translate_function(analyzed, "f", options)


def block_calling(translation, name: str) -> int:
    from repro.minic.ast_nodes import CallExpr

    for block in translation.cfg.real_blocks():
        for stmt in block.statements:
            for node in stmt.walk():
                if isinstance(node, CallExpr) and node.name == name:
                    return block.block_id
    raise AssertionError(f"no block calls {name}")


# ---------------------------------------------------------------------- #
# slicing
# ---------------------------------------------------------------------- #
class TestSlicing:
    def test_slice_drops_control_irrelevant_variables(self):
        _, translation = translate(GUARDED)
        builder = GoalBuilder(block_location=translation.block_location)
        goal = builder.reach_block(block_calling(translation, "target_hit"))
        goal_slice = slice_for_goal(translation, goal)
        # `out` feeds no branch: the slice must not materialise it
        assert "out" in goal_slice.dropped_variables
        assert {"a", "b"} <= set(goal_slice.kept_variables)
        assert goal_slice.is_proper
        assert (
            goal_slice.kept_transition_count
            < goal_slice.original_transition_count
        )
        assert (
            goal_slice.translation.system.total_state_bits()
            < translation.system.total_state_bits()
        )

    def test_slice_drops_branches_that_cannot_reach_the_goal(self):
        _, translation = translate(GUARDED)
        builder = GoalBuilder(block_location=translation.block_location)
        goal = builder.reach_block(block_calling(translation, "target_hit"))
        goal_slice = slice_for_goal(translation, goal)
        kept_labels = {
            label
            for transition in goal_slice.translation.system.transitions
            for label in transition.labels
        }
        # the else-branches (out = 2 / out = 3) cannot lead to target_hit
        all_labels = {
            label
            for transition in translation.system.transitions
            for label in transition.labels
        }
        assert kept_labels < all_labels

    def test_sliced_witness_is_completed_to_the_full_variable_set(self):
        _, translation = translate(GUARDED)
        engine = QueryEngine(translation, QueryEngineOptions(slicing=True))
        builder = GoalBuilder(block_location=translation.block_location)
        result = engine.check(
            builder.reach_block(block_calling(translation, "target_hit"))
        )
        assert result.verdict is Verdict.REACHABLE
        # even though `out` was sliced away, the witness carries every model
        # variable so the measurement layer gets a complete initial state
        assert set(result.counterexample.initial_state) == set(
            translation.system.variables
        )
        inputs = result.counterexample.inputs
        assert inputs["a"] > 10 and inputs["b"] == inputs["a"] - 3

    def test_statistics_report_full_and_sliced_model_sizes(self):
        _, translation = translate(GUARDED)
        engine = QueryEngine(translation, QueryEngineOptions(slicing=True))
        builder = GoalBuilder(block_location=translation.block_location)
        result = engine.check(
            builder.reach_block(block_calling(translation, "target_hit"))
        )
        stats = result.statistics
        assert stats.state_bits == translation.system.total_state_bits()
        assert stats.sliced_state_bits < stats.state_bits
        assert stats.sliced_transitions < stats.transitions_in_model


# ---------------------------------------------------------------------- #
# sliced vs unsliced cross-check (the refactor's soundness guarantee)
# ---------------------------------------------------------------------- #
class TestSlicedUnslicedAgree:
    """Every verdict with slicing matches the unsliced engine, and every
    sliced witness replays identically on the unstubbed interpreter."""

    def _cross_check(self, analyzed, function_name):
        model = build_optimized_model(
            analyzed, function_name, OptimizationConfig.cfg_preserving()
        )
        translation = model.translation
        board = EvaluationBoard(model.analyzed)
        builder = GoalBuilder(block_location=translation.block_location)
        sliced = QueryEngine(translation, QueryEngineOptions(slicing=True))
        unsliced = QueryEngine(translation, QueryEngineOptions(slicing=False))
        compared = 0
        for block in translation.cfg.real_blocks():
            goal = builder.reach_block(block.block_id)
            sliced_result = sliced.check(goal)
            unsliced_result = unsliced.check(goal)
            definitive = (Verdict.REACHABLE, Verdict.UNREACHABLE)
            if (
                sliced_result.verdict in definitive
                and unsliced_result.verdict in definitive
            ):
                assert sliced_result.verdict == unsliced_result.verdict, (
                    f"block {block.block_id}: sliced says "
                    f"{sliced_result.verdict}, unsliced says "
                    f"{unsliced_result.verdict}"
                )
                compared += 1
            if sliced_result.verdict is Verdict.REACHABLE:
                run = board.run(
                    function_name, dict(sliced_result.counterexample.inputs)
                )
                assert block.block_id in run.executed_blocks, (
                    f"sliced witness for block {block.block_id} does not "
                    "replay on the interpreter"
                )
        assert compared > 0

    def test_cross_check_branching_program(self, branching_program):
        self._cross_check(branching_program, "classify")

    def test_cross_check_loop_program(self, small_loop_program):
        self._cross_check(small_loop_program, "accumulate")

    def test_cross_check_wiper_case_study(self, wiper_code, wiper_function_name):
        self._cross_check(wiper_code.analyzed, wiper_function_name)

    def test_edge_sequence_goals_agree(self, branching_program):
        model = build_optimized_model(
            branching_program, "classify", OptimizationConfig.cfg_preserving()
        )
        translation = model.translation
        cfg = translation.cfg
        checker_sliced = ModelChecker(
            translation, ModelCheckerOptions(slicing=True)
        )
        checker_unsliced = ModelChecker(
            translation, ModelCheckerOptions(slicing=False)
        )
        board = EvaluationBoard(model.analyzed)
        for block in cfg.real_blocks():
            if block.terminator.kind is not TerminatorKind.BRANCH:
                continue
            for edge in cfg.out_edges(block):
                edges = [(edge.source, edge.target, edge.kind.value)]
                sliced_result = checker_sliced.find_test_data_for_edge_sequence(
                    edges
                )
                unsliced_result = (
                    checker_unsliced.find_test_data_for_edge_sequence(edges)
                )
                assert sliced_result.verdict == unsliced_result.verdict
                if sliced_result.verdict is Verdict.REACHABLE:
                    run = board.run(
                        "classify", dict(sliced_result.counterexample.inputs)
                    )
                    executed = run.executed_blocks
                    pairs = list(zip(executed, executed[1:]))
                    assert (edge.source, edge.target) in pairs


# ---------------------------------------------------------------------- #
# budgets
# ---------------------------------------------------------------------- #
class TestQueryBudget:
    def _engine(self, budget: QueryBudget, slicing: bool = False) -> tuple:
        # no declared ranges: 2 x 16-bit free inputs make the search space
        # big enough that tight budgets trip mid-search
        _, translation = translate(SLOW, use_ranges=False)
        engine = QueryEngine(
            translation,
            QueryEngineOptions(
                engine=EngineKind.SYMBOLIC, budget=budget, slicing=slicing
            ),
        )
        goal = ReachabilityGoal(
            target_labels=frozenset({"call:target_hit"}),
            description="reach the guarded call",
        )
        return engine, goal

    def test_deadline_hit_mid_search(self):
        engine, goal = self._engine(QueryBudget(deadline_ms=0, max_steps=None))
        result = engine.check(goal)
        assert result.verdict is Verdict.BUDGET_EXHAUSTED
        assert isinstance(result.exhaustion, BudgetExhausted)
        assert result.exhaustion.limit == "deadline"
        assert engine.stats.budget_exhausted == 1

    def test_step_cap(self):
        engine, goal = self._engine(
            QueryBudget(max_steps=2, deadline_ms=None, max_solver_calls=None)
        )
        result = engine.check(goal)
        assert result.verdict is Verdict.BUDGET_EXHAUSTED
        assert result.exhaustion.limit == "steps"
        assert result.exhaustion.spent_steps >= 2

    def test_solver_call_cap(self):
        engine, goal = self._engine(
            QueryBudget(max_steps=None, deadline_ms=None, max_solver_calls=1)
        )
        result = engine.check(goal)
        assert result.verdict is Verdict.BUDGET_EXHAUSTED
        assert result.exhaustion.limit == "solver_calls"
        assert result.exhaustion.spent_solver_calls >= 1

    def test_generous_budget_answers(self):
        engine, goal = self._engine(
            QueryBudget(max_steps=50_000, deadline_ms=60_000), slicing=True
        )
        result = engine.check(goal)
        assert result.verdict is Verdict.REACHABLE
        inputs = result.counterexample.inputs
        assert inputs["x"] - inputs["y"] == 4321

    def test_exhaustion_describes_itself(self):
        engine, goal = self._engine(QueryBudget(deadline_ms=0))
        result = engine.check(goal)
        assert "deadline" in result.exhaustion.describe()


# ---------------------------------------------------------------------- #
# escalation
# ---------------------------------------------------------------------- #
class TestEscalation:
    def test_explicit_escalates_to_sliced_symbolic(self):
        # ranged model: small enough for explicit, but a 1-state explicit cap
        # forces the portfolio to escalate to the sliced symbolic engine
        _, translation = translate(GUARDED)
        engine = QueryEngine(
            translation,
            QueryEngineOptions(
                engine=EngineKind.AUTO,
                slicing=True,
                explicit=ExplicitEngineOptions(max_explored_states=1),
            ),
        )
        builder = GoalBuilder(block_location=translation.block_location)
        result = engine.check(
            builder.reach_block(block_calling(translation, "target_hit"))
        )
        assert result.verdict is Verdict.REACHABLE
        assert result.statistics.engines_tried[0] == "explicit"
        assert "symbolic:sliced" in result.statistics.engines_tried
        assert engine.stats.escalations >= 1

    def test_escalation_order_is_explicit_then_sliced_then_full(self):
        _, translation = translate(GUARDED)
        engine = QueryEngine(translation, QueryEngineOptions(slicing=True))
        builder = GoalBuilder(block_location=translation.block_location)
        goal = builder.reach_block(block_calling(translation, "target_hit"))
        goal_slice = engine._slice_for(goal)
        stages = [label for label, _ in engine._stages(goal_slice)]
        assert stages == ["explicit", "symbolic:sliced", "symbolic:full"]

    def test_forced_explicit_does_not_escalate(self):
        _, translation = translate(GUARDED)
        engine = QueryEngine(
            translation,
            QueryEngineOptions(engine=EngineKind.EXPLICIT, slicing=True),
        )
        builder = GoalBuilder(block_location=translation.block_location)
        result = engine.check(
            builder.reach_block(block_calling(translation, "target_hit"))
        )
        assert result.verdict is Verdict.REACHABLE
        assert result.statistics.engines_tried == ("explicit",)


# ---------------------------------------------------------------------- #
# shared work: memo, prefix subsumption, witness reuse, probes
# ---------------------------------------------------------------------- #
class TestSharedWork:
    def test_identical_goal_is_memoised(self):
        _, translation = translate(GUARDED)
        engine = QueryEngine(translation, QueryEngineOptions(slicing=True))
        builder = GoalBuilder(block_location=translation.block_location)
        goal = builder.reach_block(block_calling(translation, "target_hit"))
        first = engine.check(goal)
        second = engine.check(goal)
        assert engine.stats.cache_hits == 1
        assert second.verdict is first.verdict

    def test_infeasible_prefix_subsumes_extensions(self, figure1):
        translation = translate_function(figure1, "main")
        checker = ModelChecker(translation, ModelCheckerOptions(slicing=True))
        # outer if false (i != 0) then second if true (i == 0): contradictory
        assert checker.is_path_infeasible([(4, 9, "false"), (9, 10, "true")])
        engine = checker.query_engine
        before = engine.stats.prefix_hits
        # any extension of the infeasible prefix is answered without a search
        assert checker.is_path_infeasible(
            [(4, 9, "false"), (9, 10, "true"), (10, 11, "fallthrough")]
        )
        assert engine.stats.prefix_hits == before + 1

    def test_witness_reuse_across_block_goals(self):
        _, translation = translate(GUARDED)
        engine = QueryEngine(translation, QueryEngineOptions(slicing=True))
        builder = GoalBuilder(block_location=translation.block_location)
        target_block = block_calling(translation, "target_hit")
        first = engine.check(builder.reach_block(target_block))
        assert first.verdict is Verdict.REACHABLE
        # a block on the witness path is answered from the stored witness
        witness_blocks = {
            int(label.split(":")[1])
            for transition in first.counterexample.trace
            for label in transition.labels
            if label.startswith("block:")
        }
        witness_blocks.discard(target_block)
        assert witness_blocks
        engine.check(builder.reach_block(sorted(witness_blocks)[0]))
        assert engine.stats.witness_reuse == 1

    def test_plan_inserts_probes_for_shared_prefixes(self):
        shared = ("edge:1->2:true", "edge:2->3:true")
        goals = [
            (index, ReachabilityGoal(ordered_labels=shared + (tail,)))
            for index, tail in enumerate(
                ("edge:3->4:true", "edge:3->5:false", "edge:3->6:none")
            )
        ]
        plan = QueryPlan.build(goals)
        assert plan.goal_count == 3
        assert plan.probe_count == 1
        probe = next(item for item in plan.items if item.is_probe)
        assert probe.goal.ordered_labels == shared
        # probes run before the goals they can subsume
        assert plan.items[0].is_probe

    def test_plan_without_shared_prefixes_has_no_probes(self):
        goals = [
            (0, ReachabilityGoal(ordered_labels=("edge:1->2:true",))),
            (1, ReachabilityGoal(ordered_labels=("edge:1->3:false",))),
        ]
        plan = QueryPlan.build(goals)
        assert plan.probe_count == 0


# ---------------------------------------------------------------------- #
# budget exhaustion propagation into the WCET report
# ---------------------------------------------------------------------- #
class TestWcetPropagation:
    HARD = """
    #pragma input a
    #pragma input b
    int a; int b; int out;
    void f(void) {
        out = 0;
        if (a * 181 + b * 59 == 28657) {
            if (b - a == 777) {
                out = 1;
            }
        } else {
            out = 2;
        }
    }
    """

    def _config(self, budget: QueryBudget) -> AnalyzerConfig:
        hybrid = HybridOptions(
            plateau_patterns=5,
            max_random_vectors=10,
            use_genetic=False,
            model_checking=ModelCheckGeneratorOptions(budget=budget),
        )
        return AnalyzerConfig(
            path_bound=2,
            hybrid=hybrid,
            extra_random_vectors=2,
            exhaustive_limit=None,
        )

    def test_budget_exhaustion_reaches_the_report(self):
        config = self._config(
            QueryBudget(max_steps=1, max_solver_calls=1, deadline_ms=None)
        )
        report = analyze_source(self.HARD, "f", config)
        # the starved budget exhausts on the hard targets ...
        assert report.generator_statistics["model_checking_budget_exhausted"] > 0
        assert report.mc_diagnostics["budget_exhausted"] > 0
        assert report.mc_diagnostics["planned"] > 0
        # ... the analysis still terminates with a bound (pessimise, not hang)
        assert report.wcet_bound_cycles > 0
        text = report.to_text()
        assert "mc budget exhausted" in text
        assert "mc queries planned" in text

    def test_generous_budget_reports_no_exhaustion(self):
        report = analyze_source(self.HARD, "f", self._config(QueryBudget()))
        assert report.generator_statistics["model_checking_budget_exhausted"] == 0
        assert "mc budget exhausted" not in report.to_text()
