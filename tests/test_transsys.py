"""Tests of the transition-system IR and the C-to-transition-system translator."""

from __future__ import annotations

import pytest

from repro.cfg import build_cfg
from repro.minic import parse_and_analyze
from repro.minic.types import IntRange
from repro.transsys import (
    StateVariable,
    TranslationOptions,
    TransitionSystem,
    block_label,
    translate_function,
)
from repro.transsys.translate import TranslationError


def translated(source: str, name: str = "f", options: TranslationOptions | None = None):
    analyzed = parse_and_analyze(source)
    return translate_function(analyzed, name, options)


SIMPLE = """
#pragma input u
#pragma range u 0 15
int u;
int r;
void f(void) {
    int t;
    t = u + 1;
    if (t > 10) {
        r = 1;
    } else {
        r = 2;
    }
}
"""


class TestStateVariables:
    def test_every_program_variable_becomes_state(self):
        result = translated(SIMPLE)
        assert set(result.system.variables) == {"u", "r", "t"}

    def test_default_domain_is_16_bit_signed(self):
        result = translated(SIMPLE)
        domain = result.system.variables["t"].domain
        assert domain.lo == -32768 and domain.hi == 32767
        assert result.system.variables["t"].bits == 16

    def test_inputs_are_free(self):
        result = translated(SIMPLE)
        assert result.system.variables["u"].is_input
        assert result.system.variables["u"].is_free

    def test_unoptimised_non_inputs_are_uninitialised(self):
        result = translated(SIMPLE)
        assert result.system.variables["r"].is_free

    def test_variable_ranges_option_shrinks_domains(self):
        options = TranslationOptions(variable_ranges={"t": IntRange(0, 16), "r": IntRange(0, 2)})
        result = translated(SIMPLE, options=options)
        assert result.system.variables["t"].bits == 5
        assert result.system.variables["r"].bits == 2

    def test_initialisation_option_fixes_non_inputs(self):
        options = TranslationOptions(initialize_variables=True)
        result = translated(SIMPLE, options=options)
        assert not result.system.variables["r"].is_free
        assert result.system.variables["u"].is_free  # inputs stay free

    def test_excluded_variables_removed_from_model(self):
        options = TranslationOptions(excluded_variables=frozenset({"r"}))
        result = translated(SIMPLE, options=options)
        assert "r" not in result.system.variables
        # assignments to r became skip transitions: structure intact
        result.system.validate()

    def test_use_declared_ranges_option(self):
        options = TranslationOptions(use_declared_ranges=True)
        result = translated(SIMPLE, options=options)
        assert result.system.variables["u"].domain.hi == 15

    def test_state_bits_accounting(self):
        result = translated(SIMPLE)
        system = result.system
        assert system.state_bits() == 3 * 16
        assert system.total_state_bits() == system.state_bits() + system.pc_bits()
        assert system.initial_state_bits() == 3 * 16  # everything free when unoptimised


class TestTransitions:
    def test_one_transition_per_statement(self):
        result = translated(SIMPLE)
        update_transitions = [t for t in result.system.transitions if t.updates]
        # t = u + 1, r = 1, r = 2
        assert len(update_transitions) == 3

    def test_branch_produces_two_guarded_transitions(self):
        result = translated(SIMPLE)
        guarded = [t for t in result.system.transitions if t.guard is not None]
        assert len(guarded) == 2

    def test_labels_carry_cfg_provenance(self):
        result = translated(SIMPLE)
        labels = {label for t in result.system.transitions for label in t.labels}
        for block in result.cfg.real_blocks():
            assert block_label(block.block_id) in labels

    def test_block_locations_exposed(self):
        result = translated(SIMPLE)
        for block in result.cfg.real_blocks():
            assert result.location_of_block(block.block_id) in result.system.locations()
        with pytest.raises(TranslationError):
            result.location_of_block(999)

    def test_switch_guards_cover_cases_and_default(self):
        source = """
        #pragma input s
        #pragma range s 0 4
        int s; int out;
        void f(void) {
            switch (s) {
            case 0: out = 1; break;
            case 1: case 2: out = 2; break;
            default: out = 3; break;
            }
        }
        """
        result = translated(source)
        guards = [t.guard for t in result.system.transitions if t.guard is not None]
        assert len(guards) == 3  # case 0, case 1/2, default

    def test_calls_become_skip_transitions(self):
        source = "void f(void) { act(); }"
        result = translated(source)
        call_transitions = [
            t for t in result.system.transitions if any(l.startswith("call:") for l in t.labels)
        ]
        assert len(call_transitions) == 1
        assert call_transitions[0].updates == []

    def test_return_jumps_to_final_location(self):
        source = "int x; int f(void) { if (x) { return 1; } return 0; }"
        result = translated(source)
        return_transitions = [
            t for t in result.system.transitions if "return" in t.labels
        ]
        assert return_transitions
        for transition in return_transitions:
            assert transition.target == result.final_location

    def test_validate_rejects_unknown_variables(self):
        system = TransitionSystem(name="broken")
        system.variables["a"] = StateVariable(name="a", domain=IntRange(0, 1))
        from repro.minic.parser import parse_expression
        from repro.transsys.system import Transition

        system.transitions.append(
            Transition(source=0, target=1, guard=parse_expression("ghost > 0"))
        )
        with pytest.raises(ValueError):
            system.validate()

    def test_describe_renders_sal_like_text(self):
        result = translated(SIMPLE)
        text = result.system.describe()
        assert "MODULE f" in text
        assert "VARIABLES" in text and "TRANSITIONS" in text

    def test_figure1_translation_summary(self, figure1):
        result = translate_function(figure1, "main")
        summary = result.system.summary()
        assert summary["variables"] == 1  # only `i`
        assert summary["transitions"] > 10
