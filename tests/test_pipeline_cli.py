"""Tests of the end-to-end WCET analyzer and the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.pipeline import AnalysisError, AnalyzerConfig, WcetAnalyzer, analyze_source
from repro.testgen import HybridOptions
from repro.workloads.figure1 import FIGURE1_SOURCE


QUICK_HYBRID = HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1)


class TestWcetAnalyzer:
    def test_figure1_analysis_is_safe(self, figure1):
        config = AnalyzerConfig(path_bound=2, hybrid=QUICK_HYBRID, extra_random_vectors=5)
        report = WcetAnalyzer(figure1, "main", config).analyze()
        assert report.is_safe()
        assert report.measured_wcet_cycles is not None
        assert report.wcet_bound_cycles >= report.measured_wcet_cycles
        assert report.infeasible_paths == 1  # the printf5 path

    def test_bound_decreases_or_equal_with_larger_path_bound(self, figure1):
        """Coarser segments capture more context, so the bound cannot get worse."""
        reports = {}
        for bound in (1, 6):
            config = AnalyzerConfig(
                path_bound=bound, hybrid=QUICK_HYBRID, extra_random_vectors=5
            )
            reports[bound] = WcetAnalyzer(figure1, "main", config).analyze()
        assert reports[6].wcet_bound_cycles <= reports[1].wcet_bound_cycles
        assert all(r.is_safe() for r in reports.values())

    def test_general_partitioner_configuration(self, figure1):
        config = AnalyzerConfig(
            path_bound=2, partitioner="general", hybrid=QUICK_HYBRID, extra_random_vectors=5
        )
        report = WcetAnalyzer(figure1, "main", config).analyze()
        assert report.is_safe()

    def test_unknown_partitioner_rejected(self, figure1):
        config = AnalyzerConfig(partitioner="magic")
        with pytest.raises(AnalysisError):
            WcetAnalyzer(figure1, "main", config).analyze()

    def test_unknown_function_rejected(self, figure1):
        with pytest.raises(AnalysisError):
            WcetAnalyzer(figure1, "missing", AnalyzerConfig())

    def test_analyze_source_wrapper(self):
        config = AnalyzerConfig(path_bound=6, hybrid=QUICK_HYBRID, extra_random_vectors=2)
        report = analyze_source(FIGURE1_SOURCE, "main", config)
        assert report.wcet_bound_cycles > 0

    def test_exhaustive_comparison_can_be_disabled(self, figure1):
        config = AnalyzerConfig(
            path_bound=2, hybrid=QUICK_HYBRID, extra_random_vectors=2, exhaustive_limit=None
        )
        report = WcetAnalyzer(figure1, "main", config).analyze()
        assert report.end_to_end is None
        assert report.overestimation_ratio is None

    def test_generator_statistics_reported(self, figure1):
        config = AnalyzerConfig(path_bound=2, hybrid=QUICK_HYBRID, extra_random_vectors=2)
        report = WcetAnalyzer(figure1, "main", config).analyze()
        stats = report.generator_statistics
        assert stats["heuristic_share_percent"] >= 0
        assert "model_checking_queries" in stats

    def test_case_study_shape(self, wiper_code, wiper_function_name):
        """The paper's comparison: partitioned bound >= exhaustive WCET, modest margin."""
        config = AnalyzerConfig(path_bound=2, hybrid=QUICK_HYBRID, extra_random_vectors=20)
        report = WcetAnalyzer(wiper_code.analyzed, wiper_function_name, config).analyze()
        assert report.is_safe()
        assert report.measured_wcet_cycles is not None
        assert 1.0 <= report.overestimation_ratio <= 1.6


class TestCli:
    def test_partition_command_prints_table1(self, tmp_path: Path, capsys):
        source_file = tmp_path / "figure1.c"
        source_file.write_text(FIGURE1_SOURCE)
        exit_code = cli_main(
            ["partition", str(source_file), "--function", "main", "--bounds", "1,2,6"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "22" in output and "16" in output and "11" in output

    def test_analyze_command(self, tmp_path: Path, capsys):
        source_file = tmp_path / "figure1.c"
        source_file.write_text(FIGURE1_SOURCE)
        exit_code = cli_main(
            ["analyze", str(source_file), "--function", "main", "--bound", "6"]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "WCET bound" in output

    def test_missing_file_reports_error(self, capsys):
        exit_code = cli_main(["partition", "/no/such/file.c", "--function", "main"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_parser_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli_main([])
