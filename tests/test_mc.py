"""Tests of the model-checking engines (explicit and symbolic)."""

from __future__ import annotations

import pytest

from repro.mc import (
    EngineKind,
    ExplicitEngineOptions,
    ExplicitStateEngine,
    ModelChecker,
    ModelCheckerOptions,
    ReachabilityGoal,
    StateSpaceTooLarge,
    SymbolicEngine,
    SymbolicEngineOptions,
    Verdict,
)
from repro.minic import parse_and_analyze
from repro.transsys import TranslationOptions, translate_function
from repro.transsys.translate import block_label


GUARDED = """
#pragma input a
#pragma input b
#pragma range a 0 20
#pragma range b 0 20
int a; int b; int out;
void f(void) {
    out = 0;
    if (a > 10) {
        if (b == a - 3) {
            out = 1;
            target_hit();
        } else {
            out = 2;
        }
    } else {
        out = 3;
    }
}
"""


def make_checker(source: str, engine: EngineKind, use_ranges: bool = True):
    """Translate and wrap in a checker.

    Declared input ranges and concrete initial values for the non-input
    variables keep the initial state space small enough for the explicit
    engine (the same combination of optimisations the paper needs before
    explicit techniques become possible at all).
    """
    analyzed = parse_and_analyze(source)
    options = TranslationOptions(
        use_declared_ranges=use_ranges, initialize_variables=use_ranges
    )
    translation = translate_function(analyzed, "f", options)
    return translation, ModelChecker(translation, ModelCheckerOptions(engine=engine))


def block_calling(translation, name: str) -> int:
    from repro.minic.ast_nodes import CallExpr

    for block in translation.cfg.real_blocks():
        for stmt in block.statements:
            for node in stmt.walk():
                if isinstance(node, CallExpr) and node.name == name:
                    return block.block_id
    raise AssertionError(f"no block calls {name}")


class TestGoals:
    def test_goal_requires_a_target(self):
        with pytest.raises(ValueError):
            ReachabilityGoal()

    def test_ordered_labels_progress(self):
        from repro.transsys.system import Transition

        goal = ReachabilityGoal(ordered_labels=("x", "y"))
        transition = Transition(source=0, target=1, labels=("x",))
        assert goal.progress_after(transition, 0) == 1
        assert goal.progress_after(transition, 1) == 1  # 'y' not present

    def test_fused_transition_advances_multiple_labels(self):
        from repro.transsys.system import Transition

        goal = ReachabilityGoal(ordered_labels=("x", "y"))
        fused = Transition(source=0, target=1, labels=("x", "y"))
        assert goal.progress_after(fused, 0) == 2
        assert goal.satisfied(1, fused, 2)


@pytest.mark.parametrize("engine", [EngineKind.EXPLICIT, EngineKind.SYMBOLIC])
class TestEnginesAgree:
    def test_reachable_goal_produces_valid_inputs(self, engine):
        translation, checker = make_checker(GUARDED, engine)
        target = block_calling(translation, "target_hit")
        result = checker.find_test_data_for_block(target)
        assert result.verdict is Verdict.REACHABLE
        inputs = result.counterexample.inputs
        assert inputs["a"] > 10 and inputs["b"] == inputs["a"] - 3

    def test_unreachable_goal_proven(self, engine):
        source = GUARDED.replace("if (b == a - 3)", "if (b == a + 30)")
        translation, checker = make_checker(source, engine)
        target = block_calling(translation, "target_hit")
        result = checker.find_test_data_for_block(target)
        assert result.verdict is Verdict.UNREACHABLE

    def test_edge_sequence_goal(self, engine):
        translation, checker = make_checker(GUARDED, engine)
        cfg = translation.cfg
        # follow: outer if TRUE edge then inner if FALSE edge -> out = 2
        from repro.cfg.graph import EdgeKind, TerminatorKind

        branch_blocks = [
            b for b in cfg.real_blocks() if b.terminator.kind is TerminatorKind.BRANCH
        ]
        outer = min(branch_blocks, key=lambda b: b.block_id)
        inner = sorted(branch_blocks, key=lambda b: b.block_id)[1]
        outer_true = next(e for e in cfg.out_edges(outer) if e.kind is EdgeKind.TRUE)
        inner_false = next(e for e in cfg.out_edges(inner) if e.kind is EdgeKind.FALSE)
        edges = [
            (outer_true.source, outer_true.target, "true"),
            (inner_false.source, inner_false.target, "false"),
        ]
        result = checker.find_test_data_for_edge_sequence(edges)
        assert result.verdict is Verdict.REACHABLE
        inputs = result.counterexample.inputs
        assert inputs["a"] > 10 and inputs["b"] != inputs["a"] - 3

    def test_counterexample_steps_positive(self, engine):
        translation, checker = make_checker(GUARDED, engine)
        target = block_calling(translation, "target_hit")
        result = checker.find_test_data_for_block(target)
        assert result.counterexample.steps == result.statistics.steps > 0

    def test_statistics_populated(self, engine):
        translation, checker = make_checker(GUARDED, engine)
        target = block_calling(translation, "target_hit")
        result = checker.find_test_data_for_block(target)
        stats = result.statistics
        assert stats.time_seconds >= 0.0
        assert stats.memory_bytes > 0
        assert stats.state_bits == translation.system.total_state_bits()


class TestExplicitEngineSpecifics:
    def test_refuses_huge_initial_state_space(self):
        translation, _ = make_checker(GUARDED, EngineKind.EXPLICIT, use_ranges=False)
        engine = ExplicitStateEngine(
            translation.system, ExplicitEngineOptions(max_initial_states=1000)
        )
        goal = ReachabilityGoal(target_labels=frozenset({block_label(2)}))
        with pytest.raises(StateSpaceTooLarge):
            engine.check(goal)

    def test_counterexample_is_shortest(self):
        translation, checker = make_checker(GUARDED, EngineKind.EXPLICIT)
        target = block_calling(translation, "target_hit")
        explicit = checker.find_test_data_for_block(target)
        symbolic_checker = ModelChecker(
            translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC)
        )
        symbolic = symbolic_checker.find_test_data_for_block(target)
        assert explicit.statistics.steps <= symbolic.statistics.steps


class TestSymbolicEngineSpecifics:
    def test_handles_16_bit_free_variables(self):
        # without declared ranges the initial state space is 2^48 -- explicit
        # enumeration is impossible but the symbolic engine answers quickly
        translation, checker = make_checker(GUARDED, EngineKind.SYMBOLIC, use_ranges=False)
        target = block_calling(translation, "target_hit")
        result = checker.find_test_data_for_block(target)
        assert result.verdict is Verdict.REACHABLE

    def test_unknown_verdict_when_budget_too_small(self):
        translation, _ = make_checker(GUARDED, EngineKind.SYMBOLIC)
        engine = SymbolicEngine(
            translation.system, SymbolicEngineOptions(max_depth=1, max_paths=2)
        )
        goal = ReachabilityGoal(
            target_labels=frozenset({"call:target_hit"}), description="tiny budget"
        )
        result = engine.check(goal)
        assert result.verdict in (Verdict.UNKNOWN, Verdict.REACHABLE)

    def test_auto_engine_selection(self):
        translation, checker = make_checker(GUARDED, EngineKind.AUTO)
        target = block_calling(translation, "target_hit")
        result = checker.find_test_data_for_block(target)
        assert result.verdict is Verdict.REACHABLE

    def test_infeasible_path_detection(self, figure1):
        translation = translate_function(figure1, "main")
        checker = ModelChecker(translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC))
        # outer if false (i != 0) then second if true (i == 0): contradictory
        assert checker.is_path_infeasible([(4, 9, "false"), (9, 10, "true")])
        assert not checker.is_path_infeasible([(4, 9, "false"), (9, 12, "false")])

    def test_witness_respects_input_domains(self):
        translation, checker = make_checker(GUARDED, EngineKind.SYMBOLIC)
        target = block_calling(translation, "target_hit")
        result = checker.find_test_data_for_block(target)
        for name, value in result.counterexample.inputs.items():
            domain = translation.system.variables[name].domain
            assert domain.lo <= value <= domain.hi
