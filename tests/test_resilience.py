"""Tests of the resilience layer (:mod:`repro.resilience`) and its users.

All tests carry the ``chaos`` marker (registered in ``pytest.ini``); they
run in the default tier-1 suite but stay bounded -- tiny workloads, quick
hybrid options, deterministic fault plans.  The one invariant every chaos
scenario must uphold: an injected fault may make a bound *coarser* (static
pessimisation) but never smaller than the fault-free bound, and never makes
the project run raise or report a hard failure.
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.pipeline import AnalyzerConfig
from repro.pipeline.analyzer import WcetAnalyzer
from repro.project import (
    FunctionSummary,
    Project,
    ProjectScheduler,
    ResultCache,
)
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    JobTimeout,
    ResilienceContext,
    RetryPolicy,
    activate,
    classify_error,
    current,
)
from repro.testgen import HybridOptions
from repro.workloads.multi import generate_multi_function_workload

pytestmark = pytest.mark.chaos

QUICK_HYBRID = HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1)


def quick_config(**overrides) -> AnalyzerConfig:
    # static analysis is off: the prefilter answers this tiny workload's
    # residual MC queries without the solver, so fault sites like mc.solve
    # would never fire -- and these tests exist to exercise exactly those
    options = dict(
        path_bound=2,
        hybrid=QUICK_HYBRID,
        extra_random_vectors=5,
        exhaustive_limit=None,
        static_analysis=False,
    )
    options.update(overrides)
    return AnalyzerConfig(**options)


@pytest.fixture(scope="module")
def workload():
    return generate_multi_function_workload(seed=2005, functions=3, units=2)


@pytest.fixture(scope="module")
def project(workload):
    return Project.from_sources(workload.sources)


@pytest.fixture(scope="module")
def clean_report(project):
    """The fault-free baseline every chaos scenario is compared against."""
    return ProjectScheduler(project, config=quick_config()).run()


def clean_bounds(report) -> dict[tuple[str, str], int]:
    return {(s.unit, s.function): s.wcet_bound_cycles for s in report.functions}


def run_with(project, plan=None, **kwargs):
    return ProjectScheduler(
        project, config=quick_config(), fault_plan=plan, **kwargs
    ).run()


# ---------------------------------------------------------------------- #
class TestFaultSpecs:
    def test_parse_positional_forms(self):
        spec = FaultSpec.parse("cache.write:raise@3")
        assert (spec.site, spec.kind, spec.nth, spec.times) == (
            "cache.write", FaultKind.RAISE, 3, 1,
        )
        spec = FaultSpec.parse("mc.solve:raise@2x4")
        assert (spec.nth, spec.times) == (2, 4)
        spec = FaultSpec.parse("job.execute:raise@5+")
        assert (spec.nth, spec.times) == (5, 0)
        spec = FaultSpec.parse("interp.step:delay=7@100")
        assert (spec.kind, spec.delay_ms, spec.nth) == (FaultKind.DELAY, 7, 100)
        spec = FaultSpec.parse("cache.read:corrupt@1")
        assert spec.kind is FaultKind.CORRUPT

    def test_parse_rate_form(self):
        spec = FaultSpec.parse_any("job.execute:rate=0.25")
        assert spec.rate == 0.25 and spec.nth is None

    @pytest.mark.parametrize(
        "bad",
        [
            "nonsense",                    # no colon
            "no.such.site:raise",          # unknown site
            "mc.solve:explode",            # unknown kind
            "mc.solve:raise@0",            # hit index < 1
            "mc.solve:raise@x",            # non-integer hit
            "mc.solve:raise=5",            # raise takes no argument
            "interp.step:delay",           # delay needs milliseconds
            "job.execute:rate=1.5",        # rate out of range
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(FaultPlanError):
            FaultSpec.parse_any(bad)

    def test_plan_describe_roundtrip(self):
        args = ["cache.write:raise@2", "mc.solve:rate=0.5", "interp.step:delay=3@10"]
        plan = FaultPlan.from_args(args, seed=9)
        assert plan.describe() == args
        again = FaultPlan.from_args(plan.describe(), seed=9)
        assert again == plan

    def test_injector_fires_on_exact_hits(self):
        plan = FaultPlan(specs=(FaultSpec.parse("mc.solve:raise@2x2"),))
        injector = FaultInjector(plan)
        fired = []
        for hit in range(1, 6):
            try:
                injector.check("mc.solve", "q")
            except InjectedFault:
                fired.append(hit)
        assert fired == [2, 3]
        assert injector.fired_count == 2

    def test_rate_decisions_are_deterministic_and_key_scoped(self):
        plan = FaultPlan(seed=3, specs=(FaultSpec.parse_any("mc.solve:rate=0.5"),))

        def fire_pattern(key: str) -> list[bool]:
            injector = FaultInjector(plan)
            pattern = []
            for _ in range(32):
                try:
                    injector.check("mc.solve", key)
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        assert fire_pattern("a") == fire_pattern("a")  # replayable
        assert fire_pattern("a") != fire_pattern("b")  # keys are independent
        assert any(fire_pattern("a")) and not all(fire_pattern("a"))

    def test_injected_fault_pickles(self):
        fault = InjectedFault("mc.solve", "boom", 3)
        clone = pickle.loads(pickle.dumps(fault))
        assert (clone.site, clone.description, clone.hit) == ("mc.solve", "boom", 3)

    def test_ambient_context_is_scoped(self):
        assert current() is None
        context = ResilienceContext(injector=None, deadline=None)
        with activate(context):
            assert current() is context
        assert current() is None


class TestRetryPolicy:
    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(base_delay_ms=10, backoff_factor=2.0, seed=5)
        delays = [policy.delay_for(attempt, "job") for attempt in (1, 2, 3)]
        again = [policy.delay_for(attempt, "job") for attempt in (1, 2, 3)]
        assert delays == again
        # exponential shape survives the jitter (jitter is +/-10%)
        assert delays[0] < delays[1] < delays[2]
        assert policy.delay_for(1, "other-job") != delays[0]

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            base_delay_ms=100, max_delay_ms=150, backoff_factor=10.0, jitter=0.0
        )
        assert policy.delay_for(5, "k") == pytest.approx(0.150)

    def test_classification(self):
        assert classify_error(InjectedFault("mc.solve", "x", 1)) == "transient"
        assert classify_error(OSError("disk")) == "transient"
        assert classify_error(JobTimeout("too slow")) == "permanent"
        assert classify_error(ValueError("bug")) == "permanent"

    def test_deadline_expires(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        with pytest.raises(JobTimeout):
            deadline.poll()
        assert not Deadline(60.0).expired()


# ---------------------------------------------------------------------- #
class TestCrashSafeCache:
    SUMMARY = FunctionSummary(
        unit="u.c",
        function="f",
        path_bound=2,
        partitioner="paper",
        segments=3,
        instrumentation_points=6,
        measurements_required=5,
        measurement_runs=9,
        test_vectors_used=7,
        infeasible_paths=1,
        wcet_bound_cycles=123,
        measured_wcet_cycles=120,
        overestimation=1.025,
        safe=True,
    )

    def cache_with_faults(self, tmp_path: Path, *specs: str) -> ResultCache:
        cache = ResultCache(tmp_path / "cache")
        plan = FaultPlan.from_args(list(specs))
        cache.fault_injector = FaultInjector(plan)
        return cache

    def test_injected_write_failure_counts_and_warns_once(self, tmp_path: Path):
        cache = self.cache_with_faults(tmp_path, "cache.write:raise@1x2")
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        cache.put(key, self.SUMMARY)
        assert cache.write_failures == 2
        assert cache.store_failures == 2  # backwards-compatible alias
        assert len([d for d in cache.diagnostics if "write" in d]) == 1
        # third write goes through
        cache.put(key, self.SUMMARY)
        assert cache.get(key) is not None

    def test_no_tmp_file_left_behind_on_write_failure(self, tmp_path: Path):
        cache = self.cache_with_faults(tmp_path, "cache.write:raise@1+")
        key = cache.key_for("f" * 64, quick_config())
        for _ in range(3):
            cache.put(key, self.SUMMARY)
        stray = [
            p
            for p in (tmp_path / "cache").rglob("*")
            if p.is_file() and p.suffix != ".json" and p.name != ".lock"
        ]
        assert stray == []
        assert cache.write_failures == 3

    def test_injected_read_failure_is_a_miss(self, tmp_path: Path):
        cache = self.cache_with_faults(tmp_path, "cache.read:raise@1")
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        assert cache.get(key) is None
        assert cache.read_failures == 1
        assert cache.get(key) is not None  # only the first read was poisoned

    def test_corrupt_entry_quarantined_with_diagnostic(self, tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        path = cache.path_for(key)
        path.write_text("{torn", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert not path.exists()  # moved out of the live store
        corrupt_dir = tmp_path / "cache" / "corrupt"
        assert (corrupt_dir / path.name).exists()
        diags = list(corrupt_dir.glob("*.diag.json"))
        assert len(diags) == 1
        # the quarantined entry never poisons a later run: a rewrite works
        cache.put(key, self.SUMMARY)
        assert cache.get(key) is not None

    def test_injected_corrupt_read(self, tmp_path: Path):
        cache = self.cache_with_faults(tmp_path, "cache.read:corrupt@1")
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_verify_sweep(self, tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        config = quick_config()
        keys = [cache.key_for(c * 64, config) for c in "abc"]
        for key in keys:
            cache.put(key, self.SUMMARY)
        cache.path_for(keys[0]).write_text("{torn", encoding="utf-8")
        report = cache.verify()
        assert report["checked"] == 3
        assert report["ok"] == 2
        assert report["quarantined"] == 1
        assert report["schema_mismatch"] == 0
        assert len(report["entries"]) == 1


# ---------------------------------------------------------------------- #
class TestResilientScheduler:
    def test_clean_run_identical_with_empty_plan(self, project, clean_report):
        report = run_with(project, FaultPlan())
        assert [s.result_payload() for s in report.functions] == [
            s.result_payload() for s in clean_report.functions
        ]
        assert report.to_dict()["resilience"]["fault_plan"] == []

    def test_job_crash_retries_then_succeeds(self, project, clean_report):
        # job.execute hits count per-job attempts: @1 crashes every job's
        # first attempt; the retry (attempt 2) runs clean
        plan = FaultPlan.from_args(["job.execute:raise@1"])
        report = run_with(project, plan)
        assert report.failures == []
        assert report.total_retries == len(report.functions)
        assert report.quarantined_functions == []
        # the retried jobs' *results* are indistinguishable from a clean run
        assert [s.result_payload() for s in report.functions] == [
            s.result_payload() for s in clean_report.functions
        ]
        assert all(s.retries == 1 and s.fault_events for s in report.functions)

    def test_persistent_job_crash_quarantines_with_sound_bound(
        self, project, clean_report
    ):
        # @1+ crashes *every* attempt of every job: retries exhaust and all
        # jobs quarantine behind static pessimised (still sound) bounds
        plan = FaultPlan.from_args(["job.execute:raise@1+"])
        policy = RetryPolicy(max_attempts=2, base_delay_ms=1, max_delay_ms=2)
        report = run_with(project, plan, retry_policy=policy)
        assert report.failures == []
        quarantined = [s for s in report.functions if s.quarantined]
        assert len(quarantined) == len(report.functions)
        baseline = clean_bounds(clean_report)
        for summary in quarantined:
            assert summary.wcet_bound_cycles >= baseline[
                (summary.unit, summary.function)
            ]
            assert summary.degraded and summary.degraded_reason
        payload = report.to_dict()
        assert payload["resilience"]["quarantined_functions"] == [
            f"{s.unit}:{s.function}" for s in quarantined
        ]

    def test_timeout_quarantines_with_sound_bound(self, project, clean_report):
        report = run_with(project, None, job_timeout_seconds=1e-9)
        assert report.failures == []
        assert all(s.quarantined for s in report.functions)
        baseline = clean_bounds(clean_report)
        for summary in report.functions:
            assert summary.wcet_bound_cycles >= baseline[
                (summary.unit, summary.function)
            ]
            assert "timeout" in (summary.degraded_reason or "")
        # a timeout is permanent: no retry was attempted
        assert report.total_retries == 0

    def test_every_site_plan_bound_safety(self, project, clean_report):
        plan = FaultPlan.from_args(
            [
                "cache.read:raise@1",
                "cache.write:raise@1",
                "pool.submit:raise@1",
                "job.execute:raise@1",
                "mc.solve:rate=0.2",
                "interp.step:raise@40000",
            ],
            seed=11,
        )
        report = run_with(project, plan)
        assert report.failures == []
        baseline = clean_bounds(clean_report)
        for summary in report.functions:
            assert summary.wcet_bound_cycles is not None
            assert summary.wcet_bound_cycles >= baseline[
                (summary.unit, summary.function)
            ]
        payload = report.to_dict()
        assert payload["resilience"]["fault_plan"] == plan.describe()

    def test_degraded_results_are_not_cached(self, project, tmp_path: Path):
        plan = FaultPlan.from_args(["mc.solve:rate=1.0"])
        cache = ResultCache(tmp_path / "cache")
        chaos = ProjectScheduler(
            project, config=quick_config(), cache=cache, fault_plan=plan
        ).run()
        degraded = {
            (s.unit, s.function) for s in chaos.functions if s.degraded
        }
        assert degraded  # every MC query faulted: something must degrade
        # a later *clean* run over the same cache must re-analyse the
        # degraded functions from scratch, not inherit pessimised bounds
        clean = ProjectScheduler(
            project, config=quick_config(), cache=ResultCache(tmp_path / "cache")
        ).run()
        for summary in clean.functions:
            if (summary.unit, summary.function) in degraded:
                assert not summary.from_cache
                assert not summary.degraded

    def test_cache_write_faults_surface_on_report(self, project, tmp_path: Path):
        plan = FaultPlan.from_args(["cache.write:raise@1+"])
        cache = ResultCache(tmp_path / "cache")
        # the query store is disabled so every counted write failure is a
        # function-summary write (query-namespace faults have their own test)
        report = ProjectScheduler(
            project, config=quick_config(), cache=cache, fault_plan=plan,
            query_cache=ResultCache.disabled(),
        ).run()
        assert report.failures == []
        assert report.cache_write_failures == len(report.functions)
        payload = report.to_dict()
        assert payload["cache"]["write_failures"] == len(report.functions)
        assert any("write" in d for d in payload["resilience"]["diagnostics"])
        assert "cache write failures" in report.to_text()


@pytest.mark.project
class TestResilientPool:
    def test_pool_submit_fault_restarts_within_budget(self, project, clean_report):
        plan = FaultPlan.from_args(["pool.submit:raise@1"])
        report = ProjectScheduler(
            project,
            config=quick_config(),
            workers=2,
            fault_plan=plan,
            pool_restart_budget=2,
        ).run()
        assert report.failures == []
        assert report.pool_restarts == 1
        assert report.mode == "process-pool"
        assert [s.result_payload() for s in report.functions] == [
            s.result_payload() for s in clean_report.functions
        ]

    def test_pool_submit_fault_exhausts_budget_then_serial(
        self, project, clean_report
    ):
        plan = FaultPlan.from_args(["pool.submit:raise@1+"])
        report = ProjectScheduler(
            project,
            config=quick_config(),
            workers=2,
            fault_plan=plan,
            pool_restart_budget=1,
        ).run()
        assert report.failures == []
        assert report.pool_restarts == 1
        assert report.mode == "serial-fallback"
        assert "restart budget" in (report.fallback_reason or "")
        assert [s.result_payload() for s in report.functions] == [
            s.result_payload() for s in clean_report.functions
        ]

    def test_worker_crash_retried_serially(self, project, clean_report):
        plan = FaultPlan.from_args(["job.execute:raise@1"])
        report = ProjectScheduler(
            project, config=quick_config(), workers=2, fault_plan=plan
        ).run()
        assert report.failures == []
        assert report.total_retries == len(report.functions)
        assert [s.result_payload() for s in report.functions] == [
            s.result_payload() for s in clean_report.functions
        ]


# ---------------------------------------------------------------------- #
class TestAnalyzerDegradation:
    def test_mc_fault_degrades_not_raises(self, workload):
        from repro.minic import parse_and_analyze

        analyzed = parse_and_analyze(
            workload.sources["unit_0.c"], filename="unit_0.c"
        )
        function = workload.functions[0][1]
        config = quick_config()
        clean = WcetAnalyzer(analyzed, function, config).analyze()

        plan = FaultPlan(specs=(FaultSpec.parse_any("mc.solve:rate=1.0"),))
        with activate(ResilienceContext(injector=FaultInjector(plan))):
            chaos = WcetAnalyzer(analyzed, function, config).analyze()
        assert chaos.degraded
        assert chaos.fault_events
        assert chaos.wcet_bound_cycles >= clean.wcet_bound_cycles
