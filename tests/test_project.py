"""Tests of the project orchestration subsystem (:mod:`repro.project`).

The process-pool tests carry the ``project`` marker (registered in
``pytest.ini``); they stay in the default tier-1 run but are bounded -- the
workload is the small synthetic multi-function project and the worker count
is capped at 2.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.pipeline import AnalyzerConfig
from repro.project import (
    CACHE_SCHEMA,
    FunctionSummary,
    Project,
    ProjectError,
    ProjectScheduler,
    ResultCache,
    SourceUnit,
    config_fingerprint,
    function_fingerprint,
)
from repro.testgen import HybridOptions
from repro.workloads.multi import generate_multi_function_workload

QUICK_HYBRID = HybridOptions(plateau_patterns=20, max_random_vectors=60, seed=1)


def quick_config(**overrides) -> AnalyzerConfig:
    options = dict(path_bound=2, hybrid=QUICK_HYBRID, extra_random_vectors=5)
    options.update(overrides)
    return AnalyzerConfig(**options)


@pytest.fixture(scope="module")
def workload():
    return generate_multi_function_workload(seed=2005, functions=4, units=2)


@pytest.fixture(scope="module")
def project(workload):
    return Project.from_sources(workload.sources)


@pytest.fixture(scope="module")
def serial_report(project):
    """One uncached serial run shared by the shape and equality tests."""
    return ProjectScheduler(project, config=quick_config()).run()


# ---------------------------------------------------------------------- #
class TestProjectModel:
    def test_workload_is_deterministic(self, workload):
        again = generate_multi_function_workload(seed=2005, functions=4, units=2)
        assert again.sources == workload.sources
        assert again.functions == workload.functions

    def test_functions_enumerated_sorted(self, project, workload):
        functions = project.functions()
        assert [(f.unit, f.name) for f in functions] == workload.functions
        assert len({f.fingerprint for f in functions}) == len(functions)
        assert all(len(f.fingerprint) == 64 for f in functions)

    def test_fingerprint_ignores_whitespace_and_comments(self, workload):
        source = workload.sources["unit_0.c"]
        noisy = "/* a new comment */\n" + source.replace(
            "    acc = 0;", "    acc  =  0 ;  /* noise */", 1
        )
        original = SourceUnit.from_source("unit_0.c", source)
        edited = SourceUnit.from_source("unit_0.c", noisy)
        name = original.function_names()[0]
        assert function_fingerprint(original.analyzed, name) == function_fingerprint(
            edited.analyzed, name
        )

    def test_fingerprint_tracks_semantic_edits(self, workload):
        source = workload.sources["unit_0.c"]
        edited = source.replace("acc = acc + 4;", "acc = acc + 7;", 1)
        assert edited != source
        original = SourceUnit.from_source("unit_0.c", source)
        changed = SourceUnit.from_source("unit_0.c", edited)
        name = "task_0"
        assert function_fingerprint(original.analyzed, name) != function_fingerprint(
            changed.analyzed, name
        )

    def test_only_filter(self, project):
        selected = project.functions(only=["task_0"])
        assert [f.name for f in selected] == ["task_0"]
        with pytest.raises(ProjectError):
            project.functions(only=["no_such_function"])

    def test_duplicate_units_rejected(self, workload):
        unit = SourceUnit.from_source("a.c", workload.sources["unit_0.c"])
        with pytest.raises(ProjectError):
            Project([unit, unit])

    def test_bad_source_rejected(self):
        with pytest.raises(ProjectError):
            SourceUnit.from_source("bad.c", "void f( {")

    def test_from_paths_disambiguates_colliding_basenames(
        self, workload, tmp_path: Path
    ):
        first = tmp_path / "src" / "a.c"
        second = tmp_path / "lib" / "a.c"
        for path in (first, second):
            path.parent.mkdir()
        first.write_text(workload.sources["unit_0.c"], encoding="utf-8")
        second.write_text(workload.sources["unit_1.c"], encoding="utf-8")
        project = Project.from_paths([first, second])
        assert {unit.name for unit in project.units} == {"a.c", str(second)}


class TestConfigFingerprint:
    def test_stable_for_equal_configs(self):
        assert config_fingerprint(quick_config()) == config_fingerprint(quick_config())

    def test_sensitive_to_any_field(self):
        base = config_fingerprint(quick_config())
        assert config_fingerprint(quick_config(path_bound=3)) != base
        assert config_fingerprint(quick_config(partitioner="general")) != base
        assert (
            config_fingerprint(
                quick_config(hybrid=HybridOptions(plateau_patterns=21, seed=1))
            )
            != base
        )


# ---------------------------------------------------------------------- #
class TestResultCache:
    SUMMARY = FunctionSummary(
        unit="u.c",
        function="f",
        path_bound=2,
        partitioner="paper",
        segments=3,
        instrumentation_points=6,
        measurements_required=5,
        measurement_runs=9,
        test_vectors_used=7,
        infeasible_paths=1,
        wcet_bound_cycles=123,
        measured_wcet_cycles=120,
        overestimation=1.025,
        safe=True,
        critical_segments=[1, 2],
        generator_statistics={"random_targets": 4},
    )

    def test_roundtrip(self, tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("f" * 64, quick_config())
        assert cache.get(key) is None
        cache.put(key, self.SUMMARY)
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.from_cache is True
        assert loaded.result_payload() == self.SUMMARY.result_payload()
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path: Path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_truncated_entry_reads_as_miss(self, tmp_path: Path):
        """A torn write (e.g. power loss mid-copy) must behave as a miss."""
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        path = cache.path_for(key)
        intact = path.read_text(encoding="utf-8")
        path.write_text(intact[: len(intact) // 2], encoding="utf-8")
        assert cache.get(key) is None

    def test_schema_mismatch_reads_as_miss(self, tmp_path: Path):
        """Entries from an incompatible cache generation must read as misses."""
        import json as json_module

        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        path = cache.path_for(key)
        payload = json_module.loads(path.read_text(encoding="utf-8"))
        payload["schema"] = "repro-project-cache/0"
        path.write_text(json_module.dumps(payload), encoding="utf-8")
        assert cache.get(key) is None

    def test_malformed_summary_payload_reads_as_miss(self, tmp_path: Path):
        """Valid JSON whose summary is not a summary must not raise."""
        import json as json_module

        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        path = cache.path_for(key)
        for broken_summary in (None, [], "text", {}):
            payload = {
                "schema": CACHE_SCHEMA,
                "key": key,
                "summary": broken_summary,
            }
            path.write_text(json_module.dumps(payload), encoding="utf-8")
            assert cache.get(key) is None

    def test_unwritable_cache_counts_failure_instead_of_raising(
        self, tmp_path: Path
    ):
        blocker = tmp_path / "cachefile"
        blocker.write_text("not a directory", encoding="utf-8")
        cache = ResultCache(blocker)
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)  # must not raise
        assert cache.store_failures == 1
        assert cache.get(key) is None

    def test_disabled_cache_never_stores(self, tmp_path: Path):
        cache = ResultCache.disabled()
        key = cache.key_for("f" * 64, quick_config())
        cache.put(key, self.SUMMARY)
        assert cache.get(key) is None
        assert cache.hits == 0 and cache.misses == 0


# ---------------------------------------------------------------------- #
class TestSchedulerSerial:
    def test_report_shape(self, serial_report, workload):
        report = serial_report
        assert not report.failures
        assert [(s.unit, s.function) for s in report.functions] == workload.functions
        assert report.mode == "serial"
        assert report.all_safe
        assert report.total_measurement_runs > 0
        assert report.total_instrumentation_points == sum(
            s.instrumentation_points for s in report.functions
        )
        payload = report.to_dict()
        assert payload["totals"]["functions"] == len(workload.functions)
        assert payload["schema"] == "repro-project-report/6"
        assert payload["execution"]["waves"] == 1
        assert payload["execution"]["fallback_reason"] is None

    def test_identical_rerun_hits_cache(self, project, tmp_path: Path):
        config = quick_config()
        first = ProjectScheduler(
            project, config=config, cache=ResultCache(tmp_path / "cache")
        ).run()
        assert (first.cache_hits, first.cache_misses) == (0, 4)

        second = ProjectScheduler(
            project, config=config, cache=ResultCache(tmp_path / "cache")
        ).run()
        assert (second.cache_hits, second.cache_misses) == (4, 0)
        assert all(summary.from_cache for summary in second.functions)
        assert second.function_payloads() == first.function_payloads()

    def test_source_edit_invalidates_only_that_function(
        self, project, workload, tmp_path: Path
    ):
        config = quick_config()
        cache_dir = tmp_path / "cache"
        ProjectScheduler(project, config=config, cache=ResultCache(cache_dir)).run()

        sources = dict(workload.sources)
        sources["unit_0.c"] = sources["unit_0.c"].replace(
            "acc = acc + 4;", "acc = acc + 7;", 1
        )
        assert sources["unit_0.c"] != workload.sources["unit_0.c"]
        edited = Project.from_sources(sources)
        report = ProjectScheduler(
            edited, config=config, cache=ResultCache(cache_dir)
        ).run()
        # only the edited task_0 re-runs; its unit sibling and the other unit hit
        assert (report.cache_hits, report.cache_misses) == (3, 1)
        missed = [s.function for s in report.functions if not s.from_cache]
        assert missed == ["task_0"]

    def test_identical_units_keep_their_own_labels_on_cache_hit(
        self, workload, tmp_path: Path
    ):
        """The cache is content-addressed; hits must not replay another
        unit's identity (two byte-identical units share one entry)."""
        sources = {"a.c": workload.sources["unit_0.c"], "b.c": workload.sources["unit_0.c"]}
        twins = Project.from_sources(sources)
        config = quick_config()
        cache_dir = tmp_path / "cache"
        first = ProjectScheduler(
            twins, config=config, cache=ResultCache(cache_dir)
        ).run()
        second = ProjectScheduler(
            twins, config=config, cache=ResultCache(cache_dir)
        ).run()
        expected = [(f.unit, f.name) for f in twins.functions()]
        assert [(s.unit, s.function) for s in first.functions] == expected
        assert [(s.unit, s.function) for s in second.functions] == expected
        assert all(summary.from_cache for summary in second.functions)

    def test_config_change_invalidates_everything(self, project, tmp_path: Path):
        cache_dir = tmp_path / "cache"
        ProjectScheduler(
            project, config=quick_config(), cache=ResultCache(cache_dir)
        ).run()
        report = ProjectScheduler(
            project,
            config=quick_config(extra_random_vectors=6),
            cache=ResultCache(cache_dir),
        ).run()
        assert (report.cache_hits, report.cache_misses) == (0, 4)


# ---------------------------------------------------------------------- #
@pytest.mark.project
class TestSchedulerParallel:
    def test_parallel_matches_serial_bit_for_bit(self, project, serial_report):
        scheduler = ProjectScheduler(project, config=quick_config(), workers=2)
        parallel = scheduler.run()
        assert scheduler.mode == "process-pool"
        assert not parallel.failures
        assert parallel.function_payloads() == serial_report.function_payloads()

    def test_parallel_run_populates_cache_for_serial_rerun(
        self, project, serial_report, tmp_path: Path
    ):
        cache_dir = tmp_path / "cache"
        parallel = ProjectScheduler(
            project,
            config=quick_config(),
            cache=ResultCache(cache_dir),
            workers=2,
        ).run()
        assert (parallel.cache_hits, parallel.cache_misses) == (0, 4)
        rerun = ProjectScheduler(
            project, config=quick_config(), cache=ResultCache(cache_dir)
        ).run()
        assert (rerun.cache_hits, rerun.cache_misses) == (4, 0)
        assert rerun.function_payloads() == serial_report.function_payloads()


# ---------------------------------------------------------------------- #
class TestProjectCli:
    def test_project_command_on_files(self, workload, tmp_path: Path, capsys):
        paths = workload.write_to(tmp_path / "src")
        cache_dir = tmp_path / "cache"
        json_path = tmp_path / "report.json"
        argv = [
            "project",
            *[str(path) for path in paths],
            "--bound",
            "2",
            "--cache-dir",
            str(cache_dir),
            "--json",
            str(json_path),
        ]
        assert cli_main(argv) == 0
        output = capsys.readouterr().out
        assert "Project WCET report: 4 function(s)" in output
        assert "0 hit(s), 4 miss(es)" in output

        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["totals"]["functions"] == 4
        assert payload["totals"]["all_safe"] is True

        # second identical invocation: one hit per unchanged function
        assert cli_main(argv[: argv.index("--json")]) == 0
        output = capsys.readouterr().out
        assert "4 hit(s), 0 miss(es)" in output

    def test_project_command_requires_input(self, capsys):
        assert cli_main(["project"]) == 2
        assert "no source files" in capsys.readouterr().err

    def test_project_command_rejects_files_with_demo(
        self, workload, tmp_path: Path, capsys
    ):
        paths = workload.write_to(tmp_path / "src")
        assert cli_main(["project", str(paths[0]), "--demo"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_project_command_unknown_function(self, workload, tmp_path: Path, capsys):
        paths = workload.write_to(tmp_path / "src")
        code = cli_main(
            ["project", str(paths[0]), "--function", "nope", "--no-cache"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err
