"""Unit tests of the mini-C parser."""

from __future__ import annotations

import pytest

from repro.minic import ast
from repro.minic.errors import ParseError
from repro.minic.parser import parse_expression, parse_program
from repro.minic.types import BOOL, INT8, INT16, UINT8, UINT16, VOID


def parse_single_function(body: str, header: str = "void f(void)"):
    program = parse_program(f"{header} {{ {body} }}")
    return program.functions[0]


class TestTopLevel:
    def test_empty_function(self):
        function = parse_single_function("")
        assert function.name == "f"
        assert function.return_type is VOID
        assert function.body.statements == []

    def test_function_with_parameters(self):
        program = parse_program("int add(int a, UInt8 b) { return a + b; }")
        function = program.functions[0]
        assert [p.name for p in function.params] == ["a", "b"]
        assert function.params[0].param_type is INT16
        assert function.params[1].param_type is UINT8

    def test_global_declarations(self):
        program = parse_program("int x; UInt16 y = 7; Bool flag = 1;")
        assert [g.name for g in program.globals] == ["x", "y", "flag"]
        assert program.globals[1].var_type is UINT16
        assert isinstance(program.globals[2].init, (ast.IntLiteral, ast.BoolLiteral))

    def test_multiple_globals_in_one_declaration(self):
        program = parse_program("int a, b = 2, c;")
        assert [g.name for g in program.globals] == ["a", "b", "c"]

    def test_prototype_recorded_as_external(self):
        program = parse_program("void helper(void); void f(void) { helper(); }")
        assert "helper" in program.external_functions

    def test_input_pragma(self):
        program = parse_program("#pragma input x\nint x; void f(void) { x = 1; }")
        assert program.input_variables == ["x"]
        assert program.globals[0].is_input

    def test_range_pragma(self):
        program = parse_program("#pragma range x 0 10\nint x;")
        assert program.range_annotations["x"].lo == 0
        assert program.range_annotations["x"].hi == 10
        assert program.globals[0].declared_range is not None

    def test_input_pragma_for_unknown_global_raises(self):
        with pytest.raises(ParseError):
            parse_program("#pragma input nosuch\nint x;")

    def test_type_spellings(self):
        program = parse_program(
            "char c; unsigned char uc; short s; unsigned int u; long l; Bool b;"
        )
        types = [g.var_type for g in program.globals]
        assert types == [INT8, UINT8, INT16, UINT16] + [types[4], BOOL]

    def test_unknown_type_raises(self):
        with pytest.raises(ParseError):
            parse_program("float x;")


class TestStatements:
    def test_if_without_else(self):
        function = parse_single_function("if (1) { }")
        stmt = function.body.statements[0]
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_branch is None

    def test_if_else_chain(self):
        function = parse_single_function("if (1) { } else if (2) { } else { }")
        stmt = function.body.statements[0]
        assert isinstance(stmt.else_branch, ast.IfStmt)
        assert stmt.else_branch.else_branch is not None

    def test_while_with_loopbound(self):
        function = parse_single_function("#pragma loopbound(5)\nwhile (1) { }")
        stmt = function.body.statements[0]
        assert isinstance(stmt, ast.WhileStmt)
        assert stmt.loop_bound == 5

    def test_do_while(self):
        function = parse_single_function("int i; do { i = i + 1; } while (i < 3);")
        assert isinstance(function.body.statements[1], ast.DoWhileStmt)

    def test_for_loop(self):
        function = parse_single_function("int i; for (i = 0; i < 4; i = i + 1) { }")
        stmt = function.body.statements[1]
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.cond is not None and stmt.step is not None

    def test_for_loop_with_declaration_init(self):
        function = parse_single_function("for (int i = 0; i < 4; i = i + 1) { }")
        stmt = function.body.statements[0]
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_break_continue_return(self):
        function = parse_single_function(
            "while (1) { if (1) { break; } continue; } return;"
        )
        assert isinstance(function.body.statements[-1], ast.ReturnStmt)

    def test_local_declaration_with_init(self):
        function = parse_single_function("int x = 3 + 4;")
        decl = function.body.statements[0]
        assert isinstance(decl, ast.DeclStmt)
        assert decl.init is not None

    def test_multi_declaration_statement(self):
        function = parse_single_function("int a, b = 1;")
        stmt = function.body.statements[0]
        assert isinstance(stmt, ast.CompoundStmt)
        assert len(stmt.statements) == 2

    def test_empty_statement(self):
        function = parse_single_function(";")
        assert isinstance(function.body.statements[0], ast.EmptyStmt)

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_single_function("x = 1")

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse_program("void f(void) { if (1) {")


class TestSwitch:
    def test_switch_case_structure(self):
        function = parse_single_function(
            "int x; switch (x) { case 1: x = 2; break; case 2: case 3: x = 3; break; "
            "default: x = 0; break; }"
        )
        switch = function.body.statements[1]
        assert isinstance(switch, ast.SwitchStmt)
        assert len(switch.cases) == 3
        assert switch.cases[1].values == [2, 3]
        assert switch.default_case is not None

    def test_case_with_constant_expression_label(self):
        function = parse_single_function("int x; switch (x) { case 1 + 2: x = 1; break; }")
        switch = function.body.statements[1]
        assert switch.cases[0].values == [3]

    def test_case_without_label_raises(self):
        with pytest.raises(ParseError):
            parse_single_function("int x; switch (x) { x = 1; break; }")

    def test_non_constant_case_label_raises(self):
        with pytest.raises(ParseError):
            parse_single_function("int x; switch (x) { case x: break; }")

    def test_case_without_trailing_break_is_accepted_when_last(self):
        function = parse_single_function("int x; switch (x) { default: x = 1; }")
        switch = function.body.statements[1]
        assert switch.cases[0].is_default


class TestExpressions:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinaryOp) and expr.right.op == "*"

    def test_precedence_relational_over_logical(self):
        expr = parse_expression("a < b && c > d")
        assert expr.op == "&&"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_operators(self):
        expr = parse_expression("!-~x")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "!"

    def test_assignment_is_right_associative(self):
        expr = parse_expression("a = b = 1")
        assert isinstance(expr, ast.AssignExpr)
        assert isinstance(expr.value, ast.AssignExpr)

    def test_compound_assignment_desugared(self):
        expr = parse_expression("x += 2")
        assert isinstance(expr, ast.AssignExpr)
        assert isinstance(expr.value, ast.BinaryOp) and expr.value.op == "+"

    def test_increment_desugared(self):
        expr = parse_expression("x++")
        assert isinstance(expr, ast.AssignExpr)
        assert expr.value.op == "+"

    def test_ternary_expression(self):
        expr = parse_expression("a ? b : c")
        assert isinstance(expr, ast.Conditional)

    def test_call_with_arguments(self):
        expr = parse_expression("min(a, b + 1)")
        assert isinstance(expr, ast.CallExpr)
        assert len(expr.args) == 2

    def test_cast_expression(self):
        expr = parse_expression("(Int16) x")
        assert isinstance(expr, ast.CastExpr)
        assert expr.target_type is INT16

    def test_cast_with_keyword_type(self):
        expr = parse_expression("(unsigned char) x")
        assert isinstance(expr, ast.CastExpr)
        assert expr.target_type is UINT8

    def test_assignment_to_non_variable_raises(self):
        with pytest.raises(ParseError):
            parse_expression("1 = 2")

    def test_trailing_tokens_raise(self):
        with pytest.raises(ParseError):
            parse_expression("a + b c")

    def test_true_false_literals(self):
        expr = parse_expression("true")
        assert isinstance(expr, ast.BoolLiteral) and expr.value is True


class TestNodeInfrastructure:
    def test_node_ids_are_unique(self):
        program = parse_program("void f(void) { int a; a = 1; if (a) { a = 2; } }")
        ids = [node.node_id for node in program.walk()]
        assert len(ids) == len(set(ids))

    def test_walk_visits_nested_nodes(self):
        program = parse_program("void f(void) { if (1) { if (2) { } } }")
        ifs = [n for n in program.walk() if isinstance(n, ast.IfStmt)]
        assert len(ifs) == 2

    def test_program_function_lookup(self):
        program = parse_program("void f(void) { } void g(void) { }")
        assert program.function("g").name == "g"
        with pytest.raises(KeyError):
            program.function("missing")
