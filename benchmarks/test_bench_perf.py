"""Perf trajectory benchmark: dataflow hot paths on the industrial app.

Unlike the figure/table benchmarks (which reproduce paper numbers), this one
tracks the repo's own engineering: it times live-variable analysis and
reaching definitions with the frozenset seed reference versus the indexed
bitset engine, cross-checks that both produce identical results, and writes
``BENCH_perf.json`` at the repository root so future PRs have a perf
trajectory to compare against.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf.bench import format_summary, run_perf_bench

from conftest import write_result

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_OUTPUT = REPO_ROOT / "BENCH_perf.json"

#: acceptance floor: the optimised fixpoint must beat the seed by this factor
MIN_COMBINED_SPEEDUP = 3.0


@pytest.mark.perf
def test_bench_perf_dataflow_speedup(benchmark, industrial_app, results_dir):
    report = benchmark.pedantic(
        run_perf_bench,
        kwargs={"app": industrial_app, "repeats": 3, "output": BENCH_OUTPUT},
        rounds=1,
        iterations=1,
    )

    # the optimisation must not change a single analysis fact
    assert report["results_match"], "bitset engine diverged from the frozenset reference"
    assert report["speedup"]["combined"] >= MIN_COMBINED_SPEEDUP, (
        f"liveness+reaching speedup {report['speedup']['combined']:.1f}x "
        f"below the {MIN_COMBINED_SPEEDUP}x floor"
    )
    # the report on disk is the artefact future PRs diff against
    on_disk = json.loads(BENCH_OUTPUT.read_text(encoding="utf-8"))
    assert on_disk["speedup"]["combined"] == report["speedup"]["combined"]
    assert on_disk["workload"]["basic_blocks"] == industrial_app.basic_blocks

    lines = [
        "Perf trajectory: dataflow hot paths on the synthetic industrial app",
        *format_summary(report).splitlines(),
        "",
        f"fixpoint iterations: liveness {report['iterations']['liveness_bitset']}, "
        f"reaching {report['iterations']['reaching_bitset']}",
        f"full report: {BENCH_OUTPUT.name}",
    ]
    write_result(results_dir, "perf.txt", lines)
