"""Perf trajectory benchmark: pipeline hot paths on the synthetic apps.

Unlike the figure/table benchmarks (which reproduce paper numbers), this one
tracks the repo's own engineering: it times live-variable analysis, reaching
definitions and the interval analysis with the seed reference versus the
optimised engines (cross-checked for identical results), plus the
partitioning and model-checking stages, and writes ``BENCH_perf.json`` at
the repository root so future PRs have a whole-pipeline perf trajectory to
compare against.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf.bench import format_summary, run_perf_bench

from conftest import write_result

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_OUTPUT = REPO_ROOT / "BENCH_perf.json"

#: acceptance floor: the optimised fixpoint must beat the seed by this factor
MIN_COMBINED_SPEEDUP = 3.0


@pytest.mark.perf
def test_bench_perf_dataflow_speedup(benchmark, industrial_app, results_dir):
    report = benchmark.pedantic(
        run_perf_bench,
        kwargs={"app": industrial_app, "repeats": 3, "output": BENCH_OUTPUT},
        rounds=1,
        iterations=1,
    )

    # the optimisations must not change a single analysis fact
    assert report["results_match"], "optimised engines diverged from the seed reference"
    assert report["speedup"]["combined"] >= MIN_COMBINED_SPEEDUP, (
        f"liveness+reaching speedup {report['speedup']['combined']:.1f}x "
        f"below the {MIN_COMBINED_SPEEDUP}x floor"
    )
    # the interval analysis rides the same cached-RPO machinery: it must not
    # be slower than the seed-era iteration order
    assert report["speedup"]["ranges"] >= 1.0

    # the whole-pipeline trajectory: partitioning and model checking recorded
    timings = report["timings_seconds"]
    for key in (
        "ranges_reference",
        "partition_paper",
        "partition_general",
        "modelcheck_build_industrial",
        "modelcheck_build_small",
        "modelcheck_queries_small",
    ):
        assert timings[key] >= 0.0, key
    pipeline = report["pipeline"]
    assert pipeline["partition_segments_paper"] > 0
    assert pipeline["modelcheck_queries"] > 0
    assert sum(pipeline["modelcheck_verdicts"].values()) == pipeline["modelcheck_queries"]

    # the query-engine section: the sliced batch must answer the same goals
    # with identical verdicts measurably faster, and the budgeted deep batch
    # on the industrial function must leave no query unbounded
    mcquery = report["mcquery"]
    assert mcquery["small_verdicts_match"], (
        "sliced and unsliced query batches diverged: "
        f"{mcquery['small_verdicts_sliced']} != {mcquery['small_verdicts_unsliced']}"
    )
    assert timings["mcquery_small_sliced"] < timings["mcquery_small_unsliced"], (
        "slicing did not speed up the small-app query batch "
        f"({timings['mcquery_small_sliced']:.4f}s vs "
        f"{timings['mcquery_small_unsliced']:.4f}s)"
    )
    assert sum(mcquery["deep_verdicts"].values()) == mcquery["deep_queries"]
    assert set(mcquery["deep_verdicts"]) <= {
        "reachable",
        "unreachable",
        "budget-exhausted",
    }, "a deep query returned an unbudgeted verdict"
    deadline_s = mcquery["deep_budget"]["deadline_ms"] / 1000.0
    assert mcquery["deep_worst_query_seconds"] <= deadline_s * 2.0, (
        "a deep query overran its budget deadline: "
        f"{mcquery['deep_worst_query_seconds']:.3f}s"
    )
    assert mcquery["deep_unsliced_probe_verdict"] in (
        "reachable",
        "unreachable",
        "budget-exhausted",
    )

    # the query-store section: the warm industrial batch must answer every
    # query from disk -- zero solver runs, full hit rate, bit-identical
    # verdicts and witness payloads -- and the renamed clone must hit the
    # original's entries (fingerprints ignore function names)
    querystore = report["querystore"]
    assert querystore["warm_zero_solver_runs"], (
        "warm run re-ran the solver: "
        f"{querystore['warm_stats']['solver_runs']} solver runs, "
        f"{querystore['warm_stats']['store_hits']} store hits of "
        f"{querystore['warm_stats']['planned']} planned"
    )
    assert querystore["warm_identical"], (
        "warm store-served results diverged from the cold run"
    )
    assert querystore["cross_run_hit_rate"] == 1.0
    assert querystore["cross_function_hit_rate"] == 1.0, (
        "renamed clone missed the store: "
        f"hit rate {querystore['cross_function_hit_rate']:.2f}"
    )
    assert querystore["warm_stats"]["replay_failures"] == 0
    for key in (
        "querystore_cold_deep",
        "querystore_warm_deep",
        "querystore_cross_function",
    ):
        assert timings[key] >= 0.0, key

    # the static-analysis section: the prefiltered cold batch must answer
    # some goals without the solver, with bit-identical verdicts, and the
    # end-to-end pipeline must produce bit-identical bounds with sa on
    # (the overhead percentage is reported, not gated)
    sa = report["sa"]
    assert sa["static_prunes"] > 0
    assert sa["solver_runs_on"] < sa["solver_runs_off"]
    assert sa["verdicts_identical"]
    assert sa["pipeline_bounds_identical"]
    for key in (
        "sa_prefilter_analysis",
        "sa_deep_prefilter_off",
        "sa_deep_prefilter_on",
        "sa_pipeline_off",
        "sa_pipeline_on",
    ):
        assert timings[key] >= 0.0, key

    # the call-graph scheduling section: multiple waves, summaries reused,
    # and a warm cache pass that hits for every function
    callgraph = report["callgraph"]
    assert callgraph["waves"] > 1
    assert callgraph["summary_reuse_calls"] > 0
    assert callgraph["cache_warm_misses"] == 0
    assert callgraph["cache_warm_hits"] == callgraph["functions"]
    for key in (
        "callgraph_flat",
        "callgraph_interprocedural",
        "callgraph_cache_cold",
        "callgraph_cache_warm",
    ):
        assert timings[key] >= 0.0, key

    # the service section: the daemon's warm hits are content-addressed
    # lookups, an incremental session re-analyses only the frontier, and
    # the served payloads match a cold run of the edited sources exactly
    service = report["service"]
    assert service["incremental_identical"], (
        "served incremental result diverged from a cold run of the same sources"
    )
    assert service["incremental_frontier"] == [
        "unit_0.c:diamond_left",
        "unit_0.c:task_0",
    ]
    assert len(service["incremental_reused"]) == 7
    assert service["jobs"]["completed"] == 2
    assert service["jobs"]["deduplicated"] >= 1
    assert service["requests_per_second"] > 0
    for key in (
        "service_cold_run",
        "service_incremental_run",
        "service_warm_submit",
        "service_result_fetch",
        "service_result_304",
    ):
        assert timings[key] >= 0.0, key

    # the report on disk is the artefact future PRs diff against
    on_disk = json.loads(BENCH_OUTPUT.read_text(encoding="utf-8"))
    assert on_disk["speedup"]["combined"] == report["speedup"]["combined"]
    assert on_disk["workload"]["basic_blocks"] == industrial_app.basic_blocks
    assert on_disk["pipeline"] == pipeline
    assert on_disk["mcquery"] == mcquery
    assert on_disk["querystore"] == querystore
    assert on_disk["service"] == service

    lines = [
        "Perf trajectory: pipeline hot paths on the synthetic applications",
        *format_summary(report).splitlines(),
        "",
        f"fixpoint iterations: liveness {report['iterations']['liveness_bitset']}, "
        f"reaching {report['iterations']['reaching_bitset']}",
        f"full report: {BENCH_OUTPUT.name}",
    ]
    write_result(results_dir, "perf.txt", lines)
