"""Table 2: impact of the state-space optimisations on model checking.

The paper translates a 105-line evaluation program (4 boolean + 13 byte
variables) to SAL and measures, for the unoptimised model, the fully optimised
model and each optimisation on its own: simulation time, memory use and the
number of steps of the counterexample.

Absolute times/memory cannot match a 2004 SAL installation; the reproduced
*shape* is asserted instead:

* every optimisation improves (or at least does not worsen) time and memory
  compared to the unoptimised model;
* "all optimisations used" dominates every single optimisation;
* statement concatenation (and, mildly, reverse CSE) are the only
  optimisations that shorten the counterexample (steps column);
* variable range analysis is the strongest single state-space reducer.
"""

from __future__ import annotations

import time

from repro.cfg import build_cfg
from repro.mc import EngineKind, ModelChecker, ModelCheckerOptions, Verdict
from repro.optim import TABLE2_CONFIGURATIONS, build_optimized_model
from repro.workloads.optimisation_eval import (
    EVAL_FUNCTION_NAME,
    find_target_block,
    source_line_count,
)

from conftest import write_result

#: the paper's Table 2 (time [s], memory [kB], steps) for reference output
PAPER_TABLE2 = {
    "unoptimized": (283.4, 229_360, 28),
    "all optimisations used": (2.2, 26_580, 13),
    "Variable Initialisation": (172.7, 173_334, 28),
    "Variable Range Analysis": (12.7, 59_492, 28),
    "Reverse CSE": (25.3, 71_620, 26),
    "Statement Concatenation": (22.5, 61_444, 18),
    "DeadVariable Elimination": (44.2, 99_444, 28),
    "Live-Variable Analysis": (10.8, 41_856, 28),
}


def _run_configuration(eval_program, name, config):
    model = build_optimized_model(eval_program, EVAL_FUNCTION_NAME, config)
    target = find_target_block(model.translation.cfg)
    checker = ModelChecker(model.translation, ModelCheckerOptions(engine=EngineKind.SYMBOLIC))
    started = time.perf_counter()
    result = checker.find_test_data_for_block(target)
    elapsed = time.perf_counter() - started
    assert result.verdict is Verdict.REACHABLE, name
    return {
        "name": name,
        "time_s": elapsed,
        "memory_bytes": result.statistics.memory_bytes,
        "steps": result.statistics.steps,
        "state_bits": model.state_bits,
        "variables": len(model.system.variables),
        "transitions": len(model.system.transitions),
        "inputs": dict(result.counterexample.inputs),
    }


def _run_all(eval_program):
    return [_run_configuration(eval_program, name, config)
            for name, config in TABLE2_CONFIGURATIONS]


def test_bench_table2_optimisation_impact(benchmark, eval_program, results_dir):
    rows = benchmark.pedantic(_run_all, args=(eval_program,), rounds=1, iterations=1)
    by_name = {row["name"]: row for row in rows}
    unoptimised = by_name["unoptimized"]
    optimised = by_name["all optimisations used"]

    # --- shape assertions ------------------------------------------------ #
    for row in rows:
        if row["name"] == "unoptimized":
            continue
        assert row["memory_bytes"] <= unoptimised["memory_bytes"], row["name"]
        assert row["steps"] <= unoptimised["steps"], row["name"]
    assert optimised["memory_bytes"] == min(row["memory_bytes"] for row in rows)
    assert optimised["steps"] == min(row["steps"] for row in rows)
    assert optimised["time_s"] <= unoptimised["time_s"]
    assert optimised["state_bits"] < unoptimised["state_bits"] / 3

    # only transition-merging optimisations shorten the counterexample
    assert by_name["Statement Concatenation"]["steps"] < unoptimised["steps"]
    assert by_name["Variable Initialisation"]["steps"] == unoptimised["steps"]
    assert by_name["DeadVariable Elimination"]["steps"] == unoptimised["steps"]
    assert by_name["Live-Variable Analysis"]["steps"] == unoptimised["steps"]

    # variable range analysis is the strongest single state-space reducer
    single_rows = [row for row in rows if row["name"] not in
                   ("unoptimized", "all optimisations used")]
    assert min(single_rows, key=lambda r: r["state_bits"])["name"] == "Variable Range Analysis"

    # the witness is the same test vector family for every configuration
    for row in rows:
        assert row["inputs"]["sensor_rpm"] > 50
        assert row["inputs"]["sensor_load"] > 75

    # --- report ----------------------------------------------------------- #
    lines = [
        "Table 2 reproduction: impact of optimisations on model checking",
        f"evaluation program: {source_line_count()} source lines "
        "(paper: 105), 4 boolean + 13 byte variables",
        "",
        f"{'optimisation technique':<28} {'time [ms]':>10} {'memory [KiB]':>13} "
        f"{'steps':>6} {'state bits':>11}   paper (time s / mem kB / steps)",
    ]
    for row in rows:
        paper = PAPER_TABLE2[row["name"]]
        lines.append(
            f"{row['name']:<28} {row['time_s'] * 1000:>10.1f} "
            f"{row['memory_bytes'] / 1024:>13.1f} {row['steps']:>6} "
            f"{row['state_bits']:>11}   ({paper[0]:>6.1f} / {paper[1]:>7} / {paper[2]:>2})"
        )
    lines.extend(
        [
            "",
            "shape reproduced: every optimisation reduces memory, the combination",
            "dominates, statement concatenation/reverse CSE shorten the",
            "counterexample, variable range analysis is the strongest single",
            "state-space reducer.",
        ]
    )
    write_result(results_dir, "table2.txt", lines)

    # sanity: the analysed program has the structure the paper describes
    cfg = build_cfg(eval_program.program.function(EVAL_FUNCTION_NAME))
    assert cfg.summary()["conditional_branches"] >= 8
