"""Table 1: measurement effort (ip, m) over the path bound b for the example.

The paper's Table 1:

    b   ip   m
    1   22  11
    2   16   9
    3   16   9
    4   16   9
    5   16   9
    6    2   6
    7    2   6

The reproduction must match these integers exactly.
"""

from __future__ import annotations

from repro.cfg import build_cfg
from repro.partition import measurement_effort_table
from repro.workloads.figure1 import TABLE1_EXPECTED

from conftest import write_result


def test_bench_table1_measurement_effort(benchmark, figure1, results_dir):
    function = figure1.program.function("main")
    cfg = build_cfg(function)
    bounds = sorted(TABLE1_EXPECTED)

    rows = benchmark(lambda: measurement_effort_table(function, bounds, cfg))

    lines = [
        "Table 1 reproduction: measurement effort with different path bound b",
        f"{'bound b':>8} {'ip (measured)':>14} {'m (measured)':>13} "
        f"{'ip (paper)':>11} {'m (paper)':>10}",
    ]
    for row in rows:
        expected_ip, expected_m = TABLE1_EXPECTED[row["bound"]]
        assert row["instrumentation_points"] == expected_ip, row
        assert row["measurements"] == expected_m, row
        lines.append(
            f"{row['bound']:>8} {row['instrumentation_points']:>14} "
            f"{row['measurements']:>13} {expected_ip:>11} {expected_m:>10}"
        )
    lines.append("")
    lines.append("every row matches the paper exactly")
    write_result(results_dir, "table1.txt", lines)
