"""Shared fixtures and result collection for the benchmark suite.

Each benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timings, every benchmark deposits the reproduced numbers into
``benchmarks/results/`` as plain-text files so EXPERIMENTS.md can reference
them directly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads.figure1 import figure1_analyzed
from repro.workloads.optimisation_eval import optimisation_eval_program
from repro.workloads.targetlink import generate_synthetic_application
from repro.workloads.wiper import wiper_case_study

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def figure1():
    return figure1_analyzed()


@pytest.fixture(scope="session")
def eval_program():
    return optimisation_eval_program()


@pytest.fixture(scope="session")
def wiper_code():
    return wiper_case_study()


@pytest.fixture(scope="session")
def industrial_app():
    """The synthetic stand-in for the paper's ~857-block industrial function."""
    return generate_synthetic_application(seed=2005)


def write_result(results_dir: Path, name: str, lines: list[str]) -> None:
    (results_dir / name).write_text("\n".join(lines) + "\n", encoding="utf-8")
