#!/usr/bin/env python
"""Standalone entry point for the pipeline perf benchmark.

Equivalent to ``python -m repro.cli bench``; kept under ``benchmarks/`` so
the perf trajectory workflow lives next to the paper benchmarks:

    PYTHONPATH=src python benchmarks/run_perf.py [--seed N] [--repeats N]

Writes ``BENCH_perf.json`` at the repository root by default.
"""

from __future__ import annotations

import sys
from pathlib import Path

# allow running without PYTHONPATH=src
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.perf.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
