"""Ablation: paper partitioner vs generalised partitioner vs end-to-end.

Not a table of the paper, but the design-choice comparison DESIGN.md calls
out: how much do the partitioning refinements (straight-line fusion, whole-
branch collapsing, fused instrumentation points) buy on industrial-size code,
and what would naive alternatives cost?

* basic-block granularity (b = 1): maximum instrumentation, minimum
  measurements;
* the paper's algorithm at a moderate bound;
* the generalised algorithm at the same bound;
* end-to-end measurement: 2 instrumentation points, astronomically many
  measurements (the paper's motivation).
"""

from __future__ import annotations

from repro.cfg import count_ast_paths
from repro.partition import GeneralPartitioner, PaperPartitioner

from conftest import write_result


def _ablation(app, bound: int = 12):
    function = app.analyzed.program.function(app.function_name)
    rows = []
    block_level = PaperPartitioner(1).partition(function, app.cfg)
    rows.append(("basic blocks (b=1)", block_level))
    paper = PaperPartitioner(bound).partition(function, app.cfg)
    rows.append((f"paper partitioner (b={bound})", paper))
    general = GeneralPartitioner(bound).partition(function, app.cfg)
    rows.append((f"general partitioner (b={bound})", general))
    return rows


def test_bench_partitioner_ablation(benchmark, industrial_app, results_dir):
    app = industrial_app
    rows = benchmark.pedantic(_ablation, args=(app,), rounds=1, iterations=1)

    results = dict(rows)
    paper = results[[k for k in results if k.startswith("paper")][0]]
    general = results[[k for k in results if k.startswith("general")][0]]
    block_level = results["basic blocks (b=1)"]

    # the generalised partitioner needs no more instrumentation than the
    # paper's, which needs no more than block-level instrumentation
    assert general.instrumentation_points <= paper.instrumentation_points
    assert paper.instrumentation_points <= block_level.instrumentation_points
    # and no partitioning needs more measurements than end-to-end would
    total_paths = count_ast_paths(app.analyzed.program.function(app.function_name))
    assert general.measurements <= total_paths

    lines = [
        "Partitioner ablation on the synthetic industrial application",
        f"({app.basic_blocks} basic blocks, {app.conditional_branches} branches)",
        "",
        f"{'configuration':<32} {'ip':>7} {'ip fused':>9} {'m':>12}",
    ]
    for name, result in rows:
        lines.append(
            f"{name:<32} {result.instrumentation_points:>7} "
            f"{result.fused_instrumentation_points:>9} {result.measurements:>12}"
        )
    lines.append(
        f"{'end-to-end measurement':<32} {2:>7} {2:>9} {total_paths:>12}"
    )
    write_result(results_dir, "ablation_partitioners.txt", lines)
