"""Figure 1: the example listing and its control-flow graph.

The paper's Figure 1 shows a small C program next to its CFG (nodes labelled
with the source line of their first instruction).  This benchmark rebuilds the
CFG, checks the structural properties the paper states (11 measurable basic
blocks, 3 conditional branches, 6 end-to-end paths) and emits the DOT drawing.
"""

from __future__ import annotations

from repro.cfg import build_cfg, count_ast_paths, count_cfg_paths, to_dot
from repro.workloads.figure1 import (
    EXPECTED_BASIC_BLOCKS,
    EXPECTED_TOTAL_PATHS,
    FIGURE1_SOURCE,
)

from conftest import write_result


def test_bench_figure1_cfg_construction(benchmark, figure1, results_dir):
    function = figure1.program.function("main")

    cfg = benchmark(lambda: build_cfg(function))

    assert len(cfg.real_blocks()) == EXPECTED_BASIC_BLOCKS
    assert cfg.summary()["conditional_branches"] == 3
    assert count_cfg_paths(cfg) == count_ast_paths(function) == EXPECTED_TOTAL_PATHS

    dot = to_dot(cfg)
    lines = [
        "Figure 1 reproduction: example program and its CFG",
        f"  basic blocks          : {len(cfg.real_blocks())} (paper: 11)",
        f"  conditional branches  : {cfg.summary()['conditional_branches']} (paper: 3)",
        f"  end-to-end paths      : {count_cfg_paths(cfg)} (paper: 6)",
        "",
        "source listing:",
        *("  " + line for line in FIGURE1_SOURCE.splitlines()),
        "",
        "CFG (graphviz DOT):",
        *("  " + line for line in dot.splitlines()),
    ]
    write_result(results_dir, "figure1.txt", lines)
