"""Figure 2: instrumentation points over the path bound (industrial code).

The paper sweeps the path bound b (log-scaled axis) for an industrial
TargetLink-generated function with ~857 basic blocks and ~300 conditional
branches and plots the number of instrumentation points:

* at b = 1 every basic block is instrumented on its own: ip = 2 x 857 = 1714;
* ip decreases monotonically as b grows;
* the right tail flattens ("even huge increments of the bound b result only
  in minor instrumentation point reductions") until the whole function fits
  under the bound and ip collapses to 2 (end-to-end measurement).

The proprietary application is substituted by the calibrated synthetic
generator (DESIGN.md §2); the sweep reproduces the curve's shape and its
endpoints.
"""

from __future__ import annotations

from repro.partition import PaperPartitioner

from conftest import write_result

#: log-spaced path bounds (the paper's x axis is logarithmic)
FIGURE2_BOUNDS = [
    1, 2, 3, 5, 8, 12, 20, 50, 100, 300, 1_000, 3_000, 10_000,
    30_000, 100_000, 300_000, 1_000_000, 10_000_000, 10**9,
]


def _sweep(app):
    function = app.analyzed.program.function(app.function_name)
    series = []
    for bound in FIGURE2_BOUNDS:
        result = PaperPartitioner(bound).partition(function, app.cfg)
        series.append((bound, result.instrumentation_points, result.measurements))
    return series


def test_bench_figure2_instrumentation_points_over_bound(
    benchmark, industrial_app, results_dir
):
    app = industrial_app
    assert abs(app.basic_blocks - 857) <= 0.05 * 857, "synthetic app must match the paper's size"

    series = benchmark.pedantic(_sweep, args=(app,), rounds=1, iterations=1)

    ips = [ip for _, ip, _ in series]
    # endpoint at b = 1: one segment per basic block
    assert ips[0] == 2 * app.basic_blocks
    # monotone non-increasing curve
    assert all(a >= b for a, b in zip(ips, ips[1:]))
    # the curve ends at end-to-end measurement (ip = 2)
    assert ips[-1] == 2
    # flattening tail: the mid-range reductions are much smaller than the head
    head_drop = ips[0] - ips[2]
    mid_drop = ips[5] - ips[7]
    assert head_drop > mid_drop >= 0

    lines = [
        "Figure 2 reproduction: instrumentation points over path bound b",
        f"synthetic industrial application: {app.basic_blocks} basic blocks, "
        f"{app.conditional_branches} conditional branches, {app.source_lines} source lines",
        f"(paper: ~857 blocks, ~300 branches, ~5000 lines with includes resolved)",
        "",
        f"{'bound b':>12} {'ip':>7} {'m':>12}",
    ]
    for bound, ip, measurements in series:
        lines.append(f"{bound:>12} {ip:>7} {measurements:>12}")
    lines.append("")
    lines.append(
        f"ip(b=1) = {ips[0]} = 2 x {app.basic_blocks} basic blocks "
        "(paper: 1714 = 2 x 857); curve decreases monotonically and flattens, "
        "reaching ip = 2 only when b exceeds the total path count"
    )
    write_result(results_dir, "figure2.txt", lines)
