"""Figure 3: measurement cycles versus instrumentation points (the trade-off).

The paper plots the number of required measurements m against the number of
instrumentation points ip for the industrial application: "From higher to
lower numbers of instrumentation points an explosion in the number of
required measurements can be observed.  End-to-end measurements would be
performed at the point where ip = 2, increasing m to an computationally
intractable value."

Section 2.3 also quotes two prose numbers that this benchmark reports
alongside: the authors' first simple partitioner reached ip ≈ 500, and
"intelligent instrumentation" (fusing coinciding points) would halve that to
≈ 251.  The generalised partitioner of this reproduction plays that role.
"""

from __future__ import annotations

from repro.partition import GeneralPartitioner, PaperPartitioner

from conftest import write_result

FIGURE3_BOUNDS = [
    1, 2, 3, 5, 8, 12, 20, 50, 100, 300, 1_000, 3_000, 10_000,
    30_000, 100_000, 300_000, 1_000_000, 10_000_000, 10**9,
]


def _tradeoff(app):
    function = app.analyzed.program.function(app.function_name)
    series = []
    for bound in FIGURE3_BOUNDS:
        result = PaperPartitioner(bound).partition(function, app.cfg)
        series.append((bound, result.instrumentation_points, result.measurements))
    return series


def test_bench_figure3_measurements_vs_instrumentation(
    benchmark, industrial_app, results_dir
):
    app = industrial_app
    function = app.analyzed.program.function(app.function_name)

    series = benchmark.pedantic(_tradeoff, args=(app,), rounds=1, iterations=1)

    # the trade-off: fewer instrumentation points => (weakly) more measurements,
    # exploding toward the end-to-end point ip = 2
    by_ip = sorted(series, key=lambda row: row[1])
    assert by_ip[0][1] == 2
    assert by_ip[0][2] > 100 * by_ip[-1][2], "m must explode toward ip = 2"
    # m at end-to-end equals the total path count: intractable for measurements
    assert by_ip[0][2] > 1_000_000

    # the paper's prose numbers: a smarter partitioning keeps ip low at small
    # measurement cost (ip ~ 500, fused ~ 251)
    general = GeneralPartitioner(10).partition(function, app.cfg)

    lines = [
        "Figure 3 reproduction: measurement cycles vs instrumentation points",
        f"{'ip':>7} {'m':>14}   (swept via path bound b)",
    ]
    for _, ip, measurements in sorted(series, key=lambda row: -row[1]):
        lines.append(f"{ip:>7} {measurements:>14}")
    lines.extend(
        [
            "",
            "Section 2.3 prose numbers (simple/general partitioner):",
            f"  general partitioner (b=10): ip = {general.instrumentation_points}, "
            f"m = {general.measurements} (paper's simple algorithm reached ip ~ 500)",
            f"  with fused instrumentation points: ip = {general.fused_instrumentation_points} "
            "(paper footnote: ~ 251)",
        ]
    )
    write_result(results_dir, "figure3.txt", lines)

    assert general.instrumentation_points < 1000
    assert general.fused_instrumentation_points < general.instrumentation_points
